#include "kvstore/kvstore.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <new>
#include <stdexcept>
#include <thread>

#include "common/timing.hpp"
#include "kvstore/recovery.hpp"

namespace proteus::kvstore {

namespace {

/** Shard router hash — distinct from the in-shard slot hash so shard
 *  choice and slot choice stay uncorrelated. */
std::uint64_t
routeMix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    return x ^ (x >> 33);
}

/**
 * Thrown out of a transaction body when a put/add finds no slot. A
 * foreign (non-TxAbort) exception, so PolyTm::run rolls the open
 * transaction back — nothing of the failing shard commits — and
 * rethrows for the multiOp driver to unwind the other shards and
 * grow-and-retry (or fail for good when growth is capped).
 */
struct TableFullError
{
};

/** Restore logical pre-images [begin, end) from the compensation log,
 *  newest first, inside `tx`. Shared by the in-transaction revert on
 *  irrevocable backends and the latch-mode cross-shard unwind. */
void
restoreUndoRangeTx(Shard &shard, polytm::Tx &tx,
                   const std::vector<KvStore::Session::Undo> &undo,
                   std::size_t begin, std::size_t end)
{
    for (std::size_t k = end; k-- > begin;)
        shard.restoreTx(tx, undo[k].key, undo[k].pre);
}

} // namespace

const char *
healthName(Health h)
{
    switch (h) {
      case Health::kHealthy:          return "healthy";
      case Health::kDegradedReadOnly: return "degraded_readonly";
      case Health::kFailed:           return "failed";
    }
    return "unknown";
}

const char *
kvStatusName(KvStatus s)
{
    switch (s) {
      case KvStatus::kOk:       return "ok";
      case KvStatus::kNotFound: return "not_found";
      case KvStatus::kNoSpace:  return "no_space";
      case KvStatus::kNoMemory: return "no_memory";
      case KvStatus::kReadOnly: return "read_only";
      case KvStatus::kWalError: return "wal_error";
    }
    return "unknown";
}

KvStore::KvStore(KvStoreOptions options)
    : options_(options), commitMode_(options.commitMode),
      recorder_(options.telemetry),
      snapRounds_(metrics_.counter("snapshot_rounds")),
      snapRetries_(metrics_.counter("snapshot_retries")),
      snapEscalations_(metrics_.counter("snapshot_escalations")),
      twoPhaseCommits_(metrics_.counter("twophase_commits")),
      twoPhaseAborts_(metrics_.counter("twophase_aborts")),
      retunes_(metrics_.counter("tuner_retunes")),
      walAppends_(metrics_.counter("wal_appends")),
      walFsyncs_(metrics_.counter("wal_fsyncs")),
      walBytes_(metrics_.counter("wal_bytes")),
      walCkptChunks_(metrics_.counter("checkpoint_chunks")),
      walErrors_(metrics_.counter("wal_errors")),
      walRescues_(metrics_.counter("wal_rescues")),
      walCkptFailures_(metrics_.counter("checkpoint_failures")),
      writesRejected_(metrics_.counter("writes_rejected")),
      healthTransitions_(metrics_.counter("health_transitions")),
      walFsyncNanos_(metrics_.histogram("wal_fsync_nanos"))
{
    if (options.numShards <= 0)
        throw std::invalid_argument("KvStore: numShards must be >= 1");
    if (options.log2SlotsPerShard == 0 || options.log2SlotsPerShard > 30)
        throw std::invalid_argument(
            "KvStore: log2SlotsPerShard must be in [1, 30]");
    if (options.maxLog2SlotsPerShard != 0 &&
        options.maxLog2SlotsPerShard < options.log2SlotsPerShard)
        throw std::invalid_argument(
            "KvStore: maxLog2SlotsPerShard is below the initial "
            "log2SlotsPerShard (the table could never hold its seed)");
    if (options.growLoadPercent == 0 || options.growLoadPercent > 100)
        throw std::invalid_argument(
            "KvStore: growLoadPercent must be in [1, 100]");
    if (options.durability != Durability::kOff) {
        if (options.walDir.empty())
            throw std::invalid_argument(
                "KvStore: durability requires a walDir");
        if (options.commitMode == CommitMode::kLatch)
            throw std::invalid_argument(
                "KvStore: durability requires commitMode kTwoPhase "
                "(latch mode logs no 2PC outcome records)");
        if (options.walFlushBytes == 0)
            throw std::invalid_argument(
                "KvStore: walFlushBytes of 0 would make every group "
                "commit window empty; use >= 1");
        if (options.checkpointChunkSlots == 0)
            throw std::invalid_argument(
                "KvStore: checkpointChunkSlots must be >= 1");
    }
    shards_.reserve(static_cast<std::size_t>(options.numShards));
    latches_.reserve(static_cast<std::size_t>(options.numShards));
    shardSeqs_ = std::make_unique<PaddedAtomicU64[]>(
        static_cast<std::size_t>(options.numShards));
    for (int s = 0; s < options.numShards; ++s) {
        ShardOptions shard_options;
        shard_options.log2Slots = options.log2SlotsPerShard;
        shard_options.maxLog2Slots = options.maxLog2SlotsPerShard;
        shard_options.growLoadPercent = options.growLoadPercent;
        shard_options.initial = options.initial;
        shard_options.recorder = &recorder_;
        shard_options.commitSeq = &commitSeq_;
        shard_options.shardIndex = s;
        shards_.push_back(std::make_unique<Shard>(shard_options));
        latches_.push_back(std::make_unique<std::shared_mutex>());
    }

    // Bridge the pre-existing stats planes into the registry so one
    // telemetry() walk exports them; the `this`-capturing callbacks
    // are safe because the registry is a member.
    const auto sumShards = [this](auto fn) {
        std::uint64_t total = 0;
        for (const auto &shard : shards_)
            total += fn(*shard);
        return total;
    };
    metrics_.counterFn("tm_commits", [this] {
        return totalStats().commits;
    });
    metrics_.counterFn("tm_aborts", [this] {
        return totalStats().aborts;
    });
    static const char *const kCauseNames[] = {
        nullptr,
        "tm_aborts_conflict",
        "tm_aborts_capacity",
        "tm_aborts_explicit",
        "tm_aborts_fallback_lock",
        "tm_aborts_validation",
    };
    for (std::size_t c = 1; c < std::size(kCauseNames); ++c) {
        metrics_.counterFn(kCauseNames[c], [this, c] {
            return totalStats().abortsByCause[c];
        });
    }
    metrics_.counterFn("snapshot_pending_waits", [sumShards] {
        return sumShards([](const Shard &shard) {
            return shard.snapshotPendingWaits();
        });
    });
    metrics_.counterFn("shard_grows", [sumShards] {
        return sumShards(
            [](const Shard &shard) { return shard.growCount(); });
    });
    metrics_.counterFn("shard_compacts", [sumShards] {
        return sumShards(
            [](const Shard &shard) { return shard.compactCount(); });
    });
    metrics_.gaugeFn("store_capacity_slots", [sumShards] {
        return sumShards(
            [](const Shard &shard) { return shard.capacity(); });
    });
    metrics_.counterFn("arena_allocs", [sumShards] {
        return sumShards([](const Shard &shard) {
            return shard.arena().stats().allocs;
        });
    });
    metrics_.counterFn("arena_magazine_hits", [sumShards] {
        return sumShards([](const Shard &shard) {
            return shard.arena().stats().magazineHits;
        });
    });
    metrics_.counterFn("arena_global_hits", [sumShards] {
        return sumShards([](const Shard &shard) {
            return shard.arena().stats().globalHits;
        });
    });
    metrics_.counterFn("arena_carves", [sumShards] {
        return sumShards([](const Shard &shard) {
            return shard.arena().stats().carves;
        });
    });
    metrics_.counterFn("arena_carve_contended", [sumShards] {
        return sumShards([](const Shard &shard) {
            return shard.arena().stats().carveContended;
        });
    });
    metrics_.counterFn("arena_cas_retries", [sumShards] {
        return sumShards([](const Shard &shard) {
            return shard.arena().stats().casRetries;
        });
    });
    metrics_.counterFn("arena_retired", [sumShards] {
        return sumShards([](const Shard &shard) {
            return shard.arena().stats().retired;
        });
    });
    metrics_.counterFn("arena_recycled", [sumShards] {
        return sumShards([](const Shard &shard) {
            return shard.arena().stats().recycled;
        });
    });
    metrics_.gaugeFn("arena_bytes_live", [sumShards] {
        return sumShards([](const Shard &shard) {
            return shard.arena().bytesLive();
        });
    });
    metrics_.gaugeFn("arena_limbo", [sumShards] {
        return sumShards([](const Shard &shard) {
            return shard.arena().limboCount();
        });
    });
    metrics_.gaugeFn("health_state", [this] {
        return static_cast<std::uint64_t>(
            health_.load(std::memory_order_relaxed));
    });
    metrics_.gaugeFn("wal_lost_bytes", [this] {
        std::uint64_t total = 0;
        for (const auto &shard_wal : wals_)
            total += shard_wal->lostBytes();
        return total;
    });

    if (options_.durability != Durability::kOff) {
        std::filesystem::create_directories(options_.walDir);
        int meta_shards = 0;
        if (wal::readMeta(options_.walDir, &meta_shards)) {
            if (meta_shards != options_.numShards)
                throw std::invalid_argument(
                    "KvStore: walDir belongs to a store with " +
                    std::to_string(meta_shards) + " shards, not " +
                    std::to_string(options_.numShards));
        } else {
            wal::writeMeta(options_.walDir, options_.numShards);
        }

        // Replay what survived into the freshly built shards, then
        // seed the store-wide sequences past everything recovered.
        const recovery::RecoveryStats stats =
            recovery::recover(options_.walDir, shards_, &recorder_);
        commitSeq_.store(stats.maxCommitSeq, std::memory_order_relaxed);
        walTxnId_.store(stats.maxTxnId, std::memory_order_relaxed);
        for (std::size_t s = 0; s < shards_.size(); ++s)
            shardSeqs_[s].value.store(stats.maxCommitSeq,
                                      std::memory_order_relaxed);
        recoveryInfo_.checkpointEntries = stats.checkpointEntries;
        recoveryInfo_.replayedRecords = stats.replayedRecords;
        recoveryInfo_.replayedOps = stats.replayedOps;
        recoveryInfo_.inDoubtAborted = stats.inDoubtAborted;
        recoveryInfo_.tornBytes = stats.tornBytes;
        metrics_.counter("recovery_replayed_records")
            .add(stats.replayedRecords, 0);
        metrics_.counter("recovery_replayed_ops")
            .add(stats.replayedOps, 0);
        metrics_.counter("recovery_indoubt_aborted")
            .add(stats.inDoubtAborted, 0);

        // Open each shard's log at a fresh generation, then compact:
        // the initial checkpoint folds everything just replayed into
        // one image and deletes the old segment files.
        wals_.reserve(shards_.size());
        walGen_.resize(shards_.size(), 0);
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            wal::WalObs obs{&walAppends_, &walFsyncs_, &walBytes_,
                            &walFsyncNanos_, &recorder_,
                            static_cast<int>(s)};
            const std::uint64_t gen =
                wal::maxGeneration(options_.walDir,
                                   static_cast<int>(s)) +
                1;
            walGen_[s] = gen;
            wals_.push_back(std::make_unique<wal::ShardWal>(
                options_.walDir + "/" +
                    wal::segmentFileName(static_cast<int>(s), gen),
                options_.durability, options_.walFlushBytes, obs));
        }
        Session session = openSession();
        checkpoint(session);
        closeSession(session);
    }
}

std::size_t
KvStore::shardOf(std::uint64_t key) const
{
    return static_cast<std::size_t>(routeMix(key) % shards_.size());
}

KvStore::~KvStore()
{
    flushWal(); // final barrier: nothing acknowledged stays buffered
    for (auto *list : {&graveyard_, &ctxPool_}) {
        while (*list)
            *list = std::move((*list)->next);
    }
}

KvStore::Session::~Session()
{
    if (!store_)
        return;
    // Same teardown as closeSession, so stack unwinding between
    // openSession and closeSession leaks neither thread slots nor the
    // commit context (deregisterThread is adminMutex-protected).
    store_->spillOwnerLimbos(*this);
    for (std::size_t s = 0; s < arenaCaches_.size(); ++s)
        store_->shards_[s]->arena().flushCache(arenaCaches_[s]);
    for (std::size_t s = 0; s < tokens_.size(); ++s)
        store_->shards_[s]->deregisterWorker(tokens_[s]);
    if (ctx_)
        store_->retireContext(std::move(ctx_));
}

void
KvStore::retireContext(std::unique_ptr<CommitContext> ctx) noexcept
{
    std::lock_guard<std::mutex> lk(ctxMutex_);
    ctx->next = std::move(ctxPool_);
    ctxPool_ = std::move(ctx);
}

KvStore::Session
KvStore::openSession()
{
    Session session;
    session.store_ = this;
    session.tokens_.reserve(shards_.size());
    {
        // Recycle a cleanly retired commit context (every intent
        // cleared before its previous owner closed); the epoch in its
        // record keeps any stale readers of the old generation safe.
        std::lock_guard<std::mutex> lk(ctxMutex_);
        if (ctxPool_) {
            session.ctx_ = std::move(ctxPool_);
            ctxPool_ = std::move(session.ctx_->next);
        }
    }
    // Thread-slot exhaustion mid-loop is safe: ~Session gives back
    // the prefix of slots we took and parks the pooled commit
    // context (freeing it would break the never-free invariant).
    for (auto &shard : shards_)
        session.tokens_.push_back(shard->registerWorker());
    session.arenaCaches_.resize(shards_.size());
    session.ownerLimbos_.resize(shards_.size());
    return session;
}

void
KvStore::closeSession(Session &session)
{
    spillOwnerLimbos(session);
    session.ownerLimbos_.clear();
    for (std::size_t s = 0; s < session.arenaCaches_.size(); ++s)
        shards_[s]->arena().flushCache(session.arenaCaches_[s]);
    session.arenaCaches_.clear();
    for (std::size_t s = 0; s < session.tokens_.size(); ++s)
        shards_[s]->deregisterWorker(session.tokens_[s]);
    session.tokens_.clear();
    if (session.ctx_) {
        // Park for reuse, don't free: a reader transaction that
        // loaded one of this session's intent pointers may still
        // dereference it (and then fail validation on the changed,
        // epoch-tagged word); the memory must outlive it. Every
        // intent was cleared before the owning multiOp returned, so
        // the context is clean — exception-poisoned contexts never
        // get here (multiOpTwoPhaseWrite graveyards them directly).
        retireContext(std::move(session.ctx_));
    }
}

bool
KvStore::get(Session &session, std::uint64_t key, std::uint64_t *value)
{
    const std::size_t s = shardOf(key);
    bool ok = false;
    runOnShard(session, s, [&](polytm::Tx &tx) {
        ok = shards_[s]->getTx(tx, key, value);
    });
    return ok;
}

bool
KvStore::getBytes(Session &session, std::uint64_t key, std::string *out)
{
    const std::size_t s = shardOf(key);
    bool ok = false;
    runOnShard(session, s, [&](polytm::Tx &tx) {
        // Pin per attempt: the reader-epoch section lets the blob
        // copy-out skip the seqlock re-check, and it must never be
        // held across a gate park (the body runs post-admission).
        EpochPin pin(shards_[s]->readerEpochs(),
                     *session.tokens_[s].epochSlot);
        ok = shards_[s]->snapshotGetBytesTx(tx, key, out, ReadView{});
    });
    return ok;
}

KvResult
KvStore::put(Session &session, std::uint64_t key, std::uint64_t value,
             std::uint64_t ttl_nanos)
{
    if (const KvStatus gate = admitWrite(); gate != KvStatus::kOk)
        return gate;
    const std::size_t s = shardOf(key);
    Shard &shard = *shards_[s];
    const std::uint64_t ttl =
        ttl_nanos != 0 ? ttl_nanos : options_.defaultTtlNanos;
    const std::uint64_t expiry = ttl == 0 ? 0 : nowNanos() + ttl;
    if (expiry != 0)
        shard.noteTtlUsed();
    std::vector<std::uint64_t> reclaim;
    for (;;) {
        const std::size_t cap = shard.capacity();
        bool ok = false;
        SlotImage pre;
        std::uint64_t lsn = 0;
        runOnShard(session, s, [&](polytm::Tx &tx) {
            reclaim.clear(); // retried attempts restart
            ok = shard.putTx(tx, key, value, expiry, &pre, &reclaim);
            if (ok && durable())
                lsn = shard.walTicketTx(tx);
        });
        if (ok) {
            KvStatus wal_status = KvStatus::kOk;
            if (durable())
                wal_status = logSingleOp(
                    s, lsn,
                    {wal::WalOp::Kind::kPut, key, value, expiry, {}});
            retireDisplaced(session, static_cast<std::uint32_t>(s),
                            reclaim);
            shard.finishWrite(session.tokens_[s], pre);
            return wal_status;
        }
        if (!shard.tryGrow(session.tokens_[s], cap))
            return KvStatus::kNoSpace;
    }
}

KvResult
KvStore::putBytes(Session &session, std::uint64_t key, const void *data,
                  std::size_t len, std::uint64_t ttl_nanos)
{
    if (const KvStatus gate = admitWrite(); gate != KvStatus::kOk)
        return gate;
    const std::size_t s = shardOf(key);
    Shard &shard = *shards_[s];
    const std::uint64_t ttl =
        ttl_nanos != 0 ? ttl_nanos : options_.defaultTtlNanos;
    const std::uint64_t expiry = ttl == 0 ? 0 : nowNanos() + ttl;
    if (expiry != 0)
        shard.noteTtlUsed();
    ValueRef ref = 0;
    try {
        ref = len <= kValueRefInlineMax
                  ? makeInlineRef(data, len)
                  : shard.arena().allocBlob(data, len,
                                            &session.arenaCaches_[s]);
    } catch (const std::bad_alloc &) {
        return KvStatus::kNoMemory; // nothing staged, nothing written
    }
    std::vector<std::uint64_t> reclaim;
    for (;;) {
        const std::size_t cap = shard.capacity();
        bool ok = false;
        SlotImage pre;
        std::uint64_t lsn = 0;
        runOnShard(session, s, [&](polytm::Tx &tx) {
            reclaim.clear();
            ok = shard.putRefTx(tx, key, ref, expiry, &pre, &reclaim);
            if (ok && durable())
                lsn = shard.walTicketTx(tx);
        });
        if (ok) {
            KvStatus wal_status = KvStatus::kOk;
            if (durable()) {
                wal::WalOp op{wal::WalOp::Kind::kPutBytes, key, 0,
                              expiry, {}};
                op.bytes.assign(static_cast<const char *>(data), len);
                wal_status = logSingleOp(s, lsn, std::move(op));
            }
            retireDisplaced(session, static_cast<std::uint32_t>(s),
                            reclaim);
            shard.finishWrite(session.tokens_[s], pre);
            return wal_status;
        }
        if (!shard.tryGrow(session.tokens_[s], cap)) {
            // Never published: immediate recycle is safe.
            shard.arena().freeBlob(ref, &session.arenaCaches_[s]);
            return KvStatus::kNoSpace;
        }
    }
}

KvResult
KvStore::del(Session &session, std::uint64_t key)
{
    if (const KvStatus gate = admitWrite(); gate != KvStatus::kOk)
        return gate;
    const std::size_t s = shardOf(key);
    Shard &shard = *shards_[s];
    bool ok = false;
    SlotImage pre;
    std::vector<std::uint64_t> reclaim;
    std::uint64_t lsn = 0;
    runOnShard(session, s, [&](polytm::Tx &tx) {
        reclaim.clear();
        ok = shard.delTx(tx, key, &pre, &reclaim);
        if (durable())
            lsn = shard.walTicketTx(tx);
    });
    KvStatus wal_status = KvStatus::kOk;
    if (durable())
        wal_status = logSingleOp(
            s, lsn, {wal::WalOp::Kind::kDel, key, 0, 0, {}});
    // Stale readers may hold the displaced handles: retire, batched.
    retireDisplaced(session, static_cast<std::uint32_t>(s), reclaim);
    if (slotStateIsValue(pre.state)) {
        shard.noteTombstones(1);
        // Deletes are writes: they must drive maintenance too, or a
        // del-only phase would park retired blobs in limbo forever
        // (and stall an in-flight migration).
        shard.maintainTick(session.tokens_[s]);
    }
    if (wal_status != KvStatus::kOk)
        return wal_status;
    return ok ? KvStatus::kOk : KvStatus::kNotFound;
}

std::size_t
KvStore::scan(Session &session, std::uint64_t start_key,
              std::size_t limit,
              std::vector<std::pair<std::uint64_t, std::uint64_t>> *out)
{
    const std::size_t s = shardOf(start_key);
    std::size_t count = 0;
    runReadSnapshot(
        session, s, [&](polytm::Tx &tx, const ReadView &view) {
            count = shards_[s]->scanTx(tx, start_key, limit, out, view);
        });
    return count;
}

std::size_t
KvStore::scanEntries(Session &session, std::uint64_t start_key,
                     std::size_t limit,
                     std::vector<Shard::ScanEntry> *out)
{
    const std::size_t s = shardOf(start_key);
    std::size_t count = 0;
    runReadSnapshot(
        session, s, [&](polytm::Tx &tx, const ReadView &view) {
            EpochPin pin(shards_[s]->readerEpochs(),
                         *session.tokens_[s].epochSlot);
            count = shards_[s]->scanEntriesTx(tx, start_key, limit,
                                              out, view);
        });
    return count;
}

namespace {

using TaggedOp = KvStore::Session::TaggedOp;

/** Net tombstone-count effect of one committed write: a delete of a
 *  value slot mints one, an insert over a tombstone reuses one. */
std::int64_t
tombstoneEffect(KvOp::Kind kind, bool applied, const SlotImage &pre)
{
    if (kind == KvOp::Kind::kDel)
        return slotStateIsValue(pre.state) ? 1 : 0;
    if (applied && pre.state == kTombstone)
        return -1; // kPut/kPutBytes/kAdd landed on a tombstone
    return 0;
}

/**
 * Apply one shard's slice of a composite op inside a transaction
 * (batch path: per-shard semantics, fitting prefix commits).
 * `consumed_empty` counts inserts that claimed a previously kEmpty
 * slot (the grow heuristic), `tombstone_delta` the net tombstones
 * minted/reused (the compaction heuristic); `reclaim` collects
 * displaced blob handles — all restart with the attempt.
 */
/** Append `op`'s post-image to `wal_ops` (nullptr → store not durable
 *  or capture disabled for this path). kAdd logs its computed result
 *  as a plain put, so replay never re-adds. */
void
captureWalOp(std::vector<wal::WalOp> *wal_ops, const KvOp &op,
             std::uint64_t expiry, const SlotImage &post)
{
    if (wal_ops == nullptr)
        return;
    switch (op.kind) {
      case KvOp::Kind::kPut:
        if (op.ok)
            wal_ops->push_back({wal::WalOp::Kind::kPut, op.key,
                                op.value, expiry, {}});
        break;
      case KvOp::Kind::kPutBytes:
        if (op.ok)
            wal_ops->push_back({wal::WalOp::Kind::kPutBytes, op.key, 0,
                                expiry, op.bytes});
        break;
      case KvOp::Kind::kDel:
        // Always logged: a delete post-image is idempotent and a miss
        // may still have reclaimed an expired slot.
        wal_ops->push_back(
            {wal::WalOp::Kind::kDel, op.key, 0, 0, {}});
        break;
      case KvOp::Kind::kAdd:
        if (op.ok)
            wal_ops->push_back({wal::WalOp::Kind::kPut, op.key,
                                post.value, post.expiry, {}});
        break;
      default:
        break;
    }
}

void
applyOpsInTx(Shard &shard, polytm::Tx &tx, const TaggedOp *begin,
             const TaggedOp *end, bool &space_ok,
             std::size_t &consumed_empty, std::int64_t &tombstone_delta,
             std::vector<std::uint64_t> &reclaim,
             std::vector<wal::WalOp> *wal_ops = nullptr)
{
    space_ok = true; // retried attempts restart the accumulation
    consumed_empty = 0;
    tombstone_delta = 0;
    reclaim.clear();
    if (wal_ops != nullptr)
        wal_ops->clear();
    for (const TaggedOp *it = begin; it != end; ++it) {
        KvOp *op = it->op;
        SlotImage pre;
        SlotImage post;
        switch (op->kind) {
          case KvOp::Kind::kGet:
            // getForUpdateTx, not getTx: batch results are documented
            // per-shard atomic, so reads resolve foreign intents the
            // way the write primitives do — a non-blocking pre-image
            // could straddle a commit flip against another read or be
            // contradicted by a fold under a later write of the same
            // key (irrevocable backends never re-run the read).
            op->ok = shard.getForUpdateTx(tx, op->key, &op->value);
            continue;
          case KvOp::Kind::kGetBytes:
            op->ok = shard.getBytesForUpdateTx(tx, op->key, &op->bytes);
            continue;
          case KvOp::Kind::kPut:
            op->ok = shard.putTx(tx, op->key, op->value, it->expiry,
                                 &pre, &reclaim);
            space_ok &= op->ok;
            break;
          case KvOp::Kind::kPutBytes:
            // op->value holds the ValueRef staged by the caller.
            op->ok = shard.putRefTx(tx, op->key, op->value, it->expiry,
                                    &pre, &reclaim);
            space_ok &= op->ok;
            break;
          case KvOp::Kind::kDel:
            op->ok = shard.delTx(tx, op->key, &pre, &reclaim);
            break;
          case KvOp::Kind::kAdd:
            op->ok = shard.addTx(tx, op->key,
                                 static_cast<std::int64_t>(op->value),
                                 &pre, &reclaim, &post);
            space_ok &= op->ok;
            break;
        }
        if (op->ok && pre.state == kEmpty)
            ++consumed_empty;
        tombstone_delta += tombstoneEffect(op->kind, op->ok, pre);
        captureWalOp(wal_ops, *op, it->expiry, post);
    }
}

/**
 * Writing multiOp slice with all-or-nothing semantics (latch mode and
 * the single-shard fast path): like applyOpsInTx but records a
 * pre-image per write into the compensation log and raises
 * TableFullError instead of committing a shard-local prefix. On an
 * irrevocable backend (HTM fallback holder) the writes already hit
 * memory and rollback() cannot undo them, so the failing attempt's
 * effects are reverted from the log, in place, before the throw.
 */
void
applyOpsUndoTx(Shard &shard, polytm::Tx &tx, const TaggedOp *begin,
               const TaggedOp *end,
               std::vector<KvStore::Session::Undo> &undo,
               std::size_t undo_mark, std::int64_t &tombstone_delta,
               std::vector<std::uint64_t> &reclaim,
               std::vector<wal::WalOp> *wal_ops = nullptr,
               std::size_t wal_mark = 0)
{
    undo.resize(undo_mark); // retried attempts restart the log
    if (wal_ops != nullptr)
        wal_ops->resize(wal_mark);
    tombstone_delta = 0;
    reclaim.clear();
    const auto fail_full = [&]() {
        if (!tx.revocable())
            restoreUndoRangeTx(shard, tx, undo, undo_mark, undo.size());
        throw TableFullError{};
    };
    for (const TaggedOp *it = begin; it != end; ++it) {
        KvOp *op = it->op;
        if (op->kind == KvOp::Kind::kGet) {
            // Writing-composite reads resolve foreign intents like
            // writers (see Shard::prepareGetTx): a non-blocking
            // pre-image here could be contradicted by a fold under a
            // later write of the same key on an irrevocable backend.
            op->ok = shard.getForUpdateTx(tx, op->key, &op->value);
            continue;
        }
        if (op->kind == KvOp::Kind::kGetBytes) {
            op->ok = shard.getBytesForUpdateTx(tx, op->key, &op->bytes);
            continue;
        }
        // The write primitives report the displaced pre-image from
        // their own (intent-resolving) probe walk — taken after any
        // foreign intent is folded, so an abort-time restore never
        // erases a foreign commit's write. A failed put/add wrote
        // nothing, so nothing is logged for it.
        KvStore::Session::Undo entry{op->key, SlotImage{}};
        bool wrote = true;
        SlotImage post;
        switch (op->kind) {
          case KvOp::Kind::kPut:
            op->ok = shard.putTx(tx, op->key, op->value, it->expiry,
                                 &entry.pre, &reclaim);
            wrote = op->ok;
            break;
          case KvOp::Kind::kPutBytes:
            op->ok = shard.putRefTx(tx, op->key, op->value, it->expiry,
                                    &entry.pre, &reclaim);
            wrote = op->ok;
            break;
          case KvOp::Kind::kDel:
            op->ok = shard.delTx(tx, op->key, &entry.pre, &reclaim);
            // Even a miss may have reclaimed an expired slot.
            wrote = entry.pre.state != kEmpty;
            break;
          case KvOp::Kind::kAdd:
            op->ok = shard.addTx(tx, op->key,
                                 static_cast<std::int64_t>(op->value),
                                 &entry.pre, &reclaim, &post);
            wrote = op->ok;
            break;
          default:
            break;
        }
        if ((op->kind == KvOp::Kind::kPut ||
             op->kind == KvOp::Kind::kPutBytes ||
             op->kind == KvOp::Kind::kAdd) &&
            !op->ok)
            fail_full();
        tombstone_delta += tombstoneEffect(op->kind, op->ok, entry.pre);
        if (wrote)
            undo.push_back(entry);
        captureWalOp(wal_ops, *op, it->expiry, post);
    }
}

/**
 * Group `ops` by home shard into the session's reusable scratch:
 * each shard index is computed exactly once, a stable sort on the
 * cached index preserves program order within one shard, the absolute
 * TTL deadline of every put is fixed once per multiOp (so retries
 * agree on it), and the contiguous slices are recorded so the
 * pin/prepare/finalize passes walk a precomputed list. Steady state
 * allocates nothing.
 */
void
groupByShard(const KvStore &store, std::uint64_t default_ttl,
             std::vector<KvOp> &ops, std::vector<TaggedOp> &scratch,
             std::vector<KvStore::Session::ShardSlice> &slices)
{
    scratch.clear();
    scratch.reserve(ops.size());
    std::uint64_t now = 0;
    for (KvOp &op : ops) {
        std::uint64_t expiry = 0;
        if (op.kind == KvOp::Kind::kPut ||
            op.kind == KvOp::Kind::kPutBytes) {
            const std::uint64_t ttl =
                op.ttlNanos != 0 ? op.ttlNanos : default_ttl;
            if (ttl != 0) {
                if (now == 0)
                    now = nowNanos();
                expiry = now + ttl;
            }
        }
        scratch.push_back(
            {static_cast<std::uint32_t>(store.shardOf(op.key)), &op,
             expiry});
    }
    std::stable_sort(scratch.begin(), scratch.end(),
                     [](const TaggedOp &a, const TaggedOp &b) {
                         return a.shard < b.shard;
                     });
    slices.clear();
    for (std::uint32_t i = 0; i < scratch.size();) {
        std::uint32_t end = i;
        while (end < scratch.size() &&
               scratch[end].shard == scratch[i].shard)
            ++end;
        slices.push_back({scratch[i].shard, i, end});
        i = end;
    }
}

/**
 * Pin the session's tokens on every touched shard for a multiOp's
 * critical span (latched region / prepare-to-finalize window): a
 * parked thread must not strand an exclusive latch or a PENDING
 * intent, and pinning bounds gate pauses to in-flight algorithm
 * switches (paper §4.2).
 */
class PinSpan
{
  public:
    PinSpan(std::vector<std::unique_ptr<Shard>> &shards,
            std::vector<polytm::ThreadToken> &tokens,
            const std::vector<KvStore::Session::ShardSlice> &slices)
        : shards_(shards), tokens_(tokens), slices_(slices)
    {
        for (const auto &slice : slices_)
            shards_[slice.shard]->poly().setPinned(
                tokens_[slice.shard].tid, true);
    }

    ~PinSpan()
    {
        for (const auto &slice : slices_)
            shards_[slice.shard]->poly().setPinned(
                tokens_[slice.shard].tid, false);
    }

  private:
    std::vector<std::unique_ptr<Shard>> &shards_;
    std::vector<polytm::ThreadToken> &tokens_;
    const std::vector<KvStore::Session::ShardSlice> &slices_;
};

} // namespace

KvResult
KvStore::multiOp(Session &session, std::vector<KvOp> &ops)
{
    bool writes = false;
    for (const KvOp &op : ops) {
        writes |= op.kind != KvOp::Kind::kGet &&
                  op.kind != KvOp::Kind::kGetBytes;
    }
    if (writes) {
        if (const KvStatus gate = admitWrite(); gate != KvStatus::kOk)
            return gate;
    }
    groupByShard(*this, options_.defaultTtlNanos, ops, session.scratch_,
                 session.slices_);
    if (session.slices_.empty())
        return KvStatus::kOk;
    session.walStatus_ = KvStatus::kOk;

    // Stage wide values up-front: blob allocation is a side effect a
    // retried prepare must not repeat, so each kPutBytes op gets its
    // ValueRef once (kept across grow-retries of the whole composite)
    // and carries it in the op's scratch value field.
    session.newBlobs_.clear();
    if (writes) {
        for (const TaggedOp &tagged : session.scratch_) {
            KvOp *op = tagged.op;
            // Any TTL-carrying write (numeric or bytes) must enable
            // the home shard's sweep.
            if (tagged.expiry != 0)
                shards_[tagged.shard]->noteTtlUsed();
            if (op->kind != KvOp::Kind::kPutBytes)
                continue;
            if (op->bytes.size() <= kValueRefInlineMax) {
                op->value =
                    makeInlineRef(op->bytes.data(), op->bytes.size());
            } else {
                try {
                    op->value =
                        shards_[tagged.shard]->arena().allocBlob(
                            op->bytes.data(), op->bytes.size(),
                            &session.arenaCaches_[tagged.shard]);
                } catch (const std::bad_alloc &) {
                    // Nothing ran yet; recycle what was staged so far.
                    releaseStagedBlobs(session, false);
                    return KvStatus::kNoMemory;
                }
                session.newBlobs_.emplace_back(tagged.shard, op->value);
            }
        }
    }

    OpStatus status = OpStatus::kDone;
    for (;;) {
        // Single-shard fast path: one TM transaction is already
        // atomic. Writing composites take it only under kTwoPhase —
        // in latch mode the exclusive latch is what orders them
        // against the shared-latch snapshot readers, so they keep the
        // full protocol.
        if (session.slices_.size() == 1 &&
            (!writes || commitMode_ == CommitMode::kTwoPhase)) {
            status = multiOpSingleShard(session, writes);
        } else if (commitMode_ == CommitMode::kTwoPhase) {
            if (writes) {
                status = multiOpTwoPhaseWrite(session);
            } else {
                multiOpTwoPhaseRead(session);
                status = OpStatus::kDone;
            }
        } else {
            status = multiOpLatched(session, writes);
        }
        if (status != OpStatus::kRetryAfterGrow)
            break;
    }

    const bool ok = status == OpStatus::kDone;
    if (writes) {
        releaseStagedBlobs(session, ok);
        if (ok) {
            freeReclaimed(session);
            for (const auto &slice : session.slices_) {
                shards_[slice.shard]->maintainTick(
                    session.tokens_[slice.shard]);
            }
        } else {
            session.reclaim_.clear(); // pre-images stayed live
        }
    }
    if (!ok) {
        // A WAL failure aborts the composite before it becomes
        // visible (kFailed from the 2PC prepare round); otherwise the
        // failure was capacity.
        return session.walStatus_ != KvStatus::kOk ? session.walStatus_
                                                   : KvStatus::kNoSpace;
    }
    // Committed in memory; a non-kOk walStatus_ means the commit is
    // NOT acknowledged durable (see KvStatus::kWalError).
    return session.walStatus_;
}

void
KvStore::releaseStagedBlobs(Session &session, bool committed)
{
    if (!committed) {
        // Never reachable through a committed slot word (the record
        // aborted before anything became visible, and resolvers only
        // dereference a post-image handle under a COMMITTED verdict):
        // immediate recycle into the session magazine is safe.
        for (const auto &[shard, ref] : session.newBlobs_) {
            shards_[shard]->arena().freeBlob(
                ref, &session.arenaCaches_[shard]);
        }
    }
    session.newBlobs_.clear();
}

void
KvStore::freeReclaimed(Session &session)
{
    // Displaced pre-images WERE committed-visible: a pinned reader
    // may still be copying them, so they retire through the reader
    // epochs instead of recycling immediately — but into the
    // session's OWN limbo, which it drains itself (no shared lock on
    // the displace-churn path; see ValueArena::OwnerLimbo).
    for (const auto &[shard, ref] : session.reclaim_) {
        Shard &owner = *shards_[shard];
        owner.arena().retireOwned(ref, session.ownerLimbos_[shard],
                                  owner.readerEpochs(),
                                  &session.arenaCaches_[shard]);
    }
    session.reclaim_.clear();
}

void
KvStore::retireDisplaced(Session &session, std::uint32_t shard,
                         const std::vector<std::uint64_t> &refs)
{
    Shard &owner = *shards_[shard];
    for (const std::uint64_t ref : refs) {
        owner.arena().retireOwned(ref, session.ownerLimbos_[shard],
                                  owner.readerEpochs(),
                                  &session.arenaCaches_[shard]);
    }
}

void
KvStore::spillOwnerLimbos(Session &session)
{
    for (std::size_t s = 0; s < session.ownerLimbos_.size(); ++s)
        shards_[s]->arena().spillOwned(session.ownerLimbos_[s]);
}

KvStore::OpStatus
KvStore::multiOpSingleShard(Session &session, bool writes)
{
    const auto &grouped = session.scratch_;
    const auto &slice = session.slices_[0];
    Shard &shard = *shards_[slice.shard];
    if (writes) {
        // One TM transaction is atomic to every observer on this
        // shard — no intents or compensation across shards needed.
        // Table-full throws out of the (rolled-back or self-reverted)
        // transaction for all-or-nothing, after which the shard grows
        // and the caller retries. The shard sequence is bumped BEFORE
        // the transaction so a snapshot round can never pair this
        // commit's post-image with another shard's pre-image and
        // still validate (bumping after the commit would reopen the
        // straddle window; a bump for an aborted attempt only costs
        // readers a spurious retry). The pin keeps a PENDING-free
        // transaction from parking mid-composite.
        PinSpan pin(shards_, session.tokens_, session.slices_);
        const std::size_t cap = shard.capacity();
        session.undo_.clear();
        session.reclaim_.clear();
        std::vector<std::uint64_t> reclaim;
        std::int64_t tomb_delta = 0;
        std::uint64_t lsn = 0;
        session.walOps_.clear();
        try {
            shardSeqs_[slice.shard].value.fetch_add(
                1, std::memory_order_acq_rel);
            shard.poly().run(
                session.tokens_[slice.shard], [&](polytm::Tx &tx) {
                    applyOpsUndoTx(shard, tx,
                                   grouped.data() + slice.begin,
                                   grouped.data() + slice.end,
                                   session.undo_, 0, tomb_delta,
                                   reclaim,
                                   durable() ? &session.walOps_
                                             : nullptr,
                                   0);
                    if (durable())
                        lsn = shard.walTicketTx(tx);
                });
        } catch (const TableFullError &) {
            return shard.tryGrow(session.tokens_[slice.shard], cap)
                       ? OpStatus::kRetryAfterGrow
                       : OpStatus::kFailed;
        }
        if (durable() && !session.walOps_.empty()) {
            wal::Record rec;
            rec.type = wal::RecordType::kBatch;
            rec.lsn = lsn;
            rec.ops = std::move(session.walOps_);
            const wal::AppendResult res =
                wals_[slice.shard]->appendAndBarrier(rec);
            session.walOps_.clear();
            // Memory already committed (single TM transaction): the
            // op completes un-acked; the ladder decides store health.
            if (res.err != wal::WalError::kOk)
                session.walStatus_ =
                    committedBatchWalError(slice.shard, rec, res);
        }
        std::size_t consumed = 0;
        for (const Session::Undo &entry : session.undo_)
            consumed += entry.pre.state == kEmpty ? 1 : 0;
        if (consumed > 0)
            shard.noteConsumed(consumed);
        if (tomb_delta != 0)
            shard.noteTombstones(tomb_delta);
        for (const std::uint64_t ref : reclaim)
            session.reclaim_.emplace_back(slice.shard, ref);
        return OpStatus::kDone;
    }
    // Read-only: one snapshot-epoch round. The TM transaction is
    // per-shard consistent on its own; the sampled read timestamp
    // resolves in-flight cross-shard intents deterministically and
    // the trailing sequence check repeats the round only when a
    // commit actually flipped on this shard inside it.
    runReadSnapshot(
        session, slice.shard,
        [&](polytm::Tx &tx, const ReadView &view) {
            EpochPin epoch_pin(shard.readerEpochs(),
                               *session.tokens_[slice.shard].epochSlot);
            for (std::uint32_t i = slice.begin; i < slice.end; ++i) {
                KvOp *op = grouped[i].op;
                if (op->kind == KvOp::Kind::kGetBytes) {
                    op->ok = shard.snapshotGetBytesTx(
                        tx, op->key, &op->bytes, view);
                } else {
                    op->ok = shard.snapshotGetTx(tx, op->key,
                                                 &op->value, view);
                }
            }
        });
    return OpStatus::kDone;
}

void
KvStore::multiOpTwoPhaseRead(Session &session)
{
    const auto &grouped = session.scratch_;
    const auto &slices = session.slices_;
    // Snapshot-epoch read: sample every touched shard's sequence,
    // then the store-wide commit sequence (in that order — the proof
    // below leans on it), and run each shard's reads as one TM
    // transaction resolving in-flight intents against the sampled
    // timestamp. The round is trustworthy iff no touched shard's
    // sequence advanced inside it:
    //  - a commit whose per-shard bump the round *straddled* (bump
    //    before our sample) reserved and published its record
    //    sequence before that bump, so our snapshot G >= its C — the
    //    resolver includes it deterministically (waiting out the
    //    few-store flip window if it races the round);
    //  - a commit whose bump came after our samples is excluded by
    //    the resolver (its C is provably > G or unpublished), and if
    //    it flips mid-round — the only case a torn pre/post mix or a
    //    raw folded post-image could be observed — the trailing check
    //    fails and the round repeats.
    // Commits touching only other shards never force a retry, and a
    // write-free workload settles every round first try. Single-key
    // writers are not serialized against (contract in kvstore.hpp).
    const auto run_round = [&]() -> bool {
        session.seqSnapshot_.clear();
        for (const auto &slice : slices) {
            session.seqSnapshot_.push_back(
                shardSeqs_[slice.shard].value.load(
                    std::memory_order_acquire));
        }
        const ReadView view{
            ReadView::Mode::kSnapshot,
            commitSeq_.load(std::memory_order_acquire)};
        for (const auto &slice : slices) {
            Shard &shard = *shards_[slice.shard];
            shard.poly().run(
                session.tokens_[slice.shard], [&](polytm::Tx &tx) {
                    EpochPin pin(
                        shard.readerEpochs(),
                        *session.tokens_[slice.shard].epochSlot);
                    for (std::uint32_t i = slice.begin; i < slice.end;
                         ++i) {
                        KvOp *op = grouped[i].op;
                        if (op->kind == KvOp::Kind::kGetBytes) {
                            op->ok = shard.snapshotGetBytesTx(
                                tx, op->key, &op->bytes, view);
                        } else {
                            op->ok = shard.snapshotGetTx(
                                tx, op->key, &op->value, view);
                        }
                    }
                });
        }
        bool stable = true;
        for (std::size_t j = 0; stable && j < slices.size(); ++j) {
            stable = shardSeqs_[slices[j].shard].value.load(
                         std::memory_order_acquire) ==
                     session.seqSnapshot_[j];
        }
        // Attributed to the round's first touched shard so concurrent
        // readers of disjoint shards never serialize on one stripe.
        snapRounds_.add(1, slices[0].shard);
        return stable;
    };

    for (int round = 0;; ++round) {
        if (run_round())
            return;
        snapRetries_.add(1, slices[0].shard);
        recorder_.record(obs::TraceKind::kSnapshotRetry,
                         static_cast<std::int32_t>(slices[0].shard),
                         commitSequence(),
                         static_cast<std::uint64_t>(round),
                         slices.size());
        snapshotRetryPause(round);
    }
}

void
KvStore::snapshotRetryPause(int round)
{
    if (round < kSnapshotBackoffRounds) {
        std::this_thread::yield();
        return;
    }
    // A commit storm is landing on exactly the touched shards faster
    // than rounds complete. Back off exponentially (capped) so the
    // reader stops burning the very cycles the storm needs to drain;
    // each doubling makes a repeat collision geometrically unlikely.
    if (round == kSnapshotBackoffRounds) {
        snapEscalations_.add(1);
        recorder_.record(obs::TraceKind::kSnapshotEscalate, -1,
                         commitSequence(),
                         static_cast<std::uint64_t>(round));
    }
    const int shift = round - kSnapshotBackoffRounds;
    const std::int64_t micros = std::int64_t{1}
                                << (shift < 10 ? shift : 10);
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

KvStore::OpStatus
KvStore::multiOpTwoPhaseWrite(Session &session)
{
    const auto &grouped = session.scratch_;
    const auto &slices = session.slices_;
    if (!session.ctx_)
        session.ctx_ = std::make_unique<CommitContext>();
    CommitContext &ctx = *session.ctx_;

    PinSpan pin(shards_, session.tokens_, slices);

    // Re-arm the session's commit record under the next epoch. Legal:
    // every intent of the previous multiOp was cleared before it
    // returned, so no live intent word reaches this record any more —
    // and a stale resolver that still holds one sees an epoch-tagged
    // word that no longer matches the status, so it can never apply
    // this generation's verdict to the old generation's payload.
    const std::uint64_t armed =
        ((CommitRecord::epochOf(ctx.record.status.load(
              std::memory_order_relaxed)) +
          1)
         << 2) |
        CommitRecord::kPending;
    ctx.record.status.store(armed, std::memory_order_release);
    ctx.arena.reset();
    session.intents_.clear();
    session.intentRanges_.clear();
    session.reclaim_.clear();
    session.walOps_.clear();
    session.walOpRanges_.clear();
    session.walLsns_.clear();
    std::uint64_t wal_txid = 0;

    try {
        bool full = false;
        bool wal_abort = false;
        std::uint32_t full_shard = 0;
        std::size_t full_capacity = 0;
        std::size_t prepared = 0;
        std::uint64_t reserved_seq = 0;
        {
            // Phase 1: prepare, in ascending shard order. A
            // conflicting preparer only ever waits on lower-numbered
            // shards' pending intents it meets while preparing a
            // higher one — wait chains strictly ascend, so they
            // cannot cycle. (No latches anywhere: snapshot readers
            // order themselves against this window through the
            // record's commit sequence alone.)
            std::vector<std::uint64_t> slice_reclaim;
            for (const auto &slice : slices) {
                Shard &shard = *shards_[slice.shard];
                const std::size_t cap = shard.capacity();
                const std::size_t arena_mark = ctx.arena.mark();
                const auto intents_mark = static_cast<std::uint32_t>(
                    session.intents_.size());
                const auto wal_mark = static_cast<std::uint32_t>(
                    session.walOps_.size());
                std::uint64_t slice_lsn = 0;
                try {
                    shard.poly().run(
                        session.tokens_[slice.shard],
                        [&](polytm::Tx &tx) {
                            // Retried attempts restart this shard's
                            // intent allocation and reclaim captures.
                            ctx.arena.rewindTo(arena_mark);
                            session.intents_.resize(intents_mark);
                            session.walOps_.resize(wal_mark);
                            slice_reclaim.clear();
                            // On an irrevocable backend the prepare's
                            // writes are already in place and
                            // rollback() cannot undo them — discard
                            // this attempt's published intents by
                            // hand before raising.
                            const auto fail_full = [&]() {
                                if (!tx.revocable()) {
                                    for (std::size_t k =
                                             session.intents_.size();
                                         k-- > intents_mark;) {
                                        shard.abortIntentTx(
                                            tx, session.intents_[k]);
                                    }
                                }
                                throw TableFullError{};
                            };
                            std::vector<wal::WalOp> *wal_ops =
                                durable() ? &session.walOps_ : nullptr;
                            for (std::uint32_t i = slice.begin;
                                 i < slice.end; ++i) {
                                KvOp *op = grouped[i].op;
                                SlotImage post;
                                switch (op->kind) {
                                  case KvOp::Kind::kGet:
                                    op->ok = shard.prepareGetTx(
                                        tx, &ctx.record, op->key,
                                        &op->value);
                                    break;
                                  case KvOp::Kind::kGetBytes:
                                    op->ok = shard.prepareGetBytesTx(
                                        tx, &ctx.record, op->key,
                                        &op->bytes);
                                    break;
                                  case KvOp::Kind::kPut:
                                    if (!shard.preparePutTx(
                                            tx, &ctx.record, ctx.arena,
                                            session.intents_, op->key,
                                            kFull, op->value,
                                            grouped[i].expiry, &op->ok,
                                            &slice_reclaim))
                                        fail_full();
                                    break;
                                  case KvOp::Kind::kPutBytes:
                                    if (!shard.preparePutTx(
                                            tx, &ctx.record, ctx.arena,
                                            session.intents_, op->key,
                                            kFullRef, op->value,
                                            grouped[i].expiry, &op->ok,
                                            &slice_reclaim))
                                        fail_full();
                                    break;
                                  case KvOp::Kind::kDel:
                                    shard.prepareDelTx(
                                        tx, &ctx.record, ctx.arena,
                                        session.intents_, op->key,
                                        &op->ok, &slice_reclaim);
                                    break;
                                  case KvOp::Kind::kAdd:
                                    if (!shard.prepareAddTx(
                                            tx, &ctx.record, ctx.arena,
                                            session.intents_, op->key,
                                            static_cast<std::int64_t>(
                                                op->value),
                                            &op->ok, &slice_reclaim,
                                            &post))
                                        fail_full();
                                    break;
                                }
                                captureWalOp(wal_ops, *op,
                                             grouped[i].expiry, post);
                            }
                            if (durable())
                                slice_lsn = shard.walTicketTx(tx);
                        });
                } catch (const TableFullError &) {
                    full = true;
                    full_shard = slice.shard;
                    full_capacity = cap;
                }
                if (full)
                    break;
                session.intentRanges_.emplace_back(
                    intents_mark, static_cast<std::uint32_t>(
                                      session.intents_.size()));
                session.walOpRanges_.emplace_back(
                    wal_mark, static_cast<std::uint32_t>(
                                  session.walOps_.size()));
                session.walLsns_.push_back(slice_lsn);
                for (const std::uint64_t ref : slice_reclaim)
                    session.reclaim_.emplace_back(slice.shard, ref);
                ++prepared;
            }

            // Durable-before-visible, round (a): every participant's
            // prepare record (its post-images) must be durable on its
            // own log BEFORE any outcome is appended anywhere —
            // without this, a buffer spill could leak a commit
            // outcome to disk while a peer's prepare was still
            // buffered, and a kill-9 would recover half the
            // transaction. A failed append or barrier here aborts the
            // whole composite: no outcome record exists on any shard
            // yet, so recovery resolves the orphaned prepares as
            // ABORT — unwinding the in-memory intents keeps the live
            // store and the recovered store identical.
            std::uint32_t werr_shard = 0;
            wal::WalError werr = wal::WalError::kOk;
            if (!full && durable()) {
                wal_txid = walTxnId_.fetch_add(
                               1, std::memory_order_relaxed) +
                           1;
                std::vector<std::uint64_t> prep_ends(slices.size());
                for (std::size_t j = 0; j < slices.size(); ++j) {
                    wal::Record prep;
                    prep.type = wal::RecordType::kTxnPrepare;
                    prep.txid = wal_txid;
                    prep.lsn = session.walLsns_[j];
                    const auto range = session.walOpRanges_[j];
                    prep.ops.assign(
                        session.walOps_.begin() + range.first,
                        session.walOps_.begin() + range.second);
                    const wal::AppendResult res =
                        wals_[slices[j].shard]->append(prep);
                    prep_ends[j] = res.end;
                    if (res.err != wal::WalError::kOk) {
                        werr = res.err;
                        werr_shard = slices[j].shard;
                        break;
                    }
                }
                for (std::size_t j = 0;
                     werr == wal::WalError::kOk && j < slices.size();
                     ++j) {
                    const wal::WalError e =
                        wals_[slices[j].shard]->barrier(prep_ends[j]);
                    if (e != wal::WalError::kOk) {
                        werr = e;
                        werr_shard = slices[j].shard;
                    }
                }
                wal_abort = werr != wal::WalError::kOk;
            }

            if (full || wal_abort) {
                // All-or-nothing: nothing committed on the failing
                // shard (its transaction rolled back), and the
                // already-prepared shards only hold invisible intents
                // — mark the record aborted and discard them.
                ctx.record.status.store((armed & ~std::uint64_t{3}) |
                                            CommitRecord::kAborted,
                                        std::memory_order_release);
                const std::uint32_t abort_shard =
                    full ? full_shard : werr_shard;
                twoPhaseAborts_.add(1, abort_shard);
                recorder_.record(obs::TraceKind::kTwoPhaseAbort,
                                 static_cast<std::int32_t>(abort_shard),
                                 commitSequence(), full_capacity,
                                 prepared);
                for (std::size_t j = 0; j < prepared; ++j) {
                    Shard &shard = *shards_[slices[j].shard];
                    const auto range = session.intentRanges_[j];
                    shard.poly().run(
                        session.tokens_[slices[j].shard],
                        [&](polytm::Tx &tx) {
                            for (std::uint32_t k = range.first;
                                 k < range.second; ++k)
                                shard.abortIntentTx(
                                    tx, session.intents_[k]);
                        });
                }
                if (wal_abort) {
                    // Best-effort abort outcome on every participant
                    // (recovery would abort the in-doubt prepares
                    // anyway; this just spares it the doubt). Only
                    // then consult the ladder — the record is already
                    // resolved, so the rescue rotation can never
                    // deadlock against a checkpoint walking over this
                    // transaction's intents.
                    wal::Record outcome;
                    outcome.type = wal::RecordType::kTxnOutcome;
                    outcome.txid = wal_txid;
                    outcome.committed = false;
                    for (const auto &slice : slices)
                        wals_[slice.shard]->appendAndBarrier(outcome);
                    session.walStatus_ = onWalError(werr_shard, werr);
                }
            } else {
                // Phase 2: the commit point, in snapshot-epoch order:
                //  (1) reserve the store-wide sequence C and stamp it
                //      (epoch-tagged) into the record — from here on
                //      any reader whose snapshot G >= C can see that
                //      this commit belongs inside its snapshot and
                //      waits out the flip below;
                //  (2) bump every touched shard's sequence — a
                //      snapshot round sampling a bump therefore
                //      *also* sees the published C (store order), so
                //      straddling rounds classify this commit
                //      deterministically instead of retrying;
                //  (3) flip the record: one store makes every
                //      intent's post-image the live value on all
                //      shards at once. Bumps before flip: a round
                //      that could observe any post-image without
                //      having seen C fails its trailing check.
                recorder_.record(
                    obs::TraceKind::kTwoPhasePrepare, -1,
                    commitSequence(), slices.size(),
                    session.intents_.size());
                // Durable-before-visible, round (b): the commit
                // outcome reaches EVERY participant's log and its
                // barrier before the record is stamped or flipped, so
                // no reader observes a commit recovery could lose.
                // Recovery may therefore trust any single durable
                // outcome: round (a) above guaranteed all prepares
                // are on disk. An outcome append/barrier failure does
                // NOT abort: the outcome may already be durable on a
                // sibling shard, and aborting in memory while
                // recovery would commit diverges with data loss —
                // instead the commit flips as usual and the composite
                // returns un-acked (kWalError: the effect may or may
                // not survive recovery, which the ack contract
                // permits for un-acknowledged operations).
                const std::uint64_t commit_seq =
                    commitSeq_.fetch_add(1, std::memory_order_acq_rel) +
                    1;
                recorder_.record(obs::TraceKind::kTwoPhaseReserve, -1,
                                 commit_seq, slices.size());
                if (durable()) {
                    wal::Record outcome;
                    outcome.type = wal::RecordType::kTxnOutcome;
                    outcome.txid = wal_txid;
                    outcome.commitSeq = commit_seq;
                    outcome.committed = true;
                    session.walLsns_.clear(); // reuse as end offsets
                    for (const auto &slice : slices) {
                        const wal::AppendResult res =
                            wals_[slice.shard]->append(outcome);
                        session.walLsns_.push_back(res.end);
                        if (res.err != wal::WalError::kOk &&
                            werr == wal::WalError::kOk) {
                            werr = res.err;
                            werr_shard = slice.shard;
                        }
                    }
                    for (std::size_t j = 0; j < slices.size(); ++j) {
                        const wal::WalError e =
                            wals_[slices[j].shard]->barrier(
                                session.walLsns_[j]);
                        if (e != wal::WalError::kOk &&
                            werr == wal::WalError::kOk) {
                            werr = e;
                            werr_shard = slices[j].shard;
                        }
                    }
                }
                ctx.record.commitSeq.store(
                    CommitRecord::packSeq(commit_seq,
                                          CommitRecord::epochOf(armed)),
                    std::memory_order_release);
                for (const auto &slice : slices)
                    shardSeqs_[slice.shard].value.fetch_add(
                        1, std::memory_order_acq_rel);
                ctx.record.status.store((armed & ~std::uint64_t{3}) |
                                            CommitRecord::kCommitted,
                                        std::memory_order_release);
                recorder_.record(obs::TraceKind::kTwoPhaseFlip, -1,
                                 commit_seq, slices.size(),
                                 session.intents_.size());
                // Ladder only after the flip: the record is resolved,
                // so a rescue rotation cannot deadlock against a
                // checkpoint waiting on this transaction's intents.
                if (werr != wal::WalError::kOk) {
                    session.walStatus_ = onWalError(werr_shard, werr);
                    // A rescued shard restarts on a fresh generation
                    // with no copy of this verdict, and the abandoned
                    // segment's copy is of indeterminate durability.
                    // Re-append it wherever the log still accepts
                    // writes (duplicates are harmless — recovery
                    // resolves outcomes by txid) so losing the
                    // poisoned bytes cannot orphan a sibling shard's
                    // durable prepare into an in-doubt abort.
                    wal::Record outcome;
                    outcome.type = wal::RecordType::kTxnOutcome;
                    outcome.txid = wal_txid;
                    outcome.commitSeq = commit_seq;
                    outcome.committed = true;
                    for (const auto &slice : slices)
                        if (wals_[slice.shard]->status() ==
                            wal::WalError::kOk)
                            (void)wals_[slice.shard]->append(outcome);
                }
                reserved_seq = commit_seq;
            }
        } // the PENDING window is over

        if (full) {
            session.reclaim_.clear(); // pre-images stayed live
            Shard &shard = *shards_[full_shard];
            return shard.tryGrow(session.tokens_[full_shard],
                                 full_capacity)
                       ? OpStatus::kRetryAfterGrow
                       : OpStatus::kFailed;
        }
        if (wal_abort) {
            // Aborted before visibility; the caller reports the
            // session's walStatus_ (never retried — the log, not the
            // table, refused).
            session.reclaim_.clear(); // pre-images stayed live
            return OpStatus::kFailed;
        }

        // Phase 3: finalize — fold intents into the slot words so the
        // record can be re-armed. Observers that get there first help,
        // so each fold is conditional on the intent still standing.
        for (std::size_t j = 0; j < slices.size(); ++j) {
            Shard &shard = *shards_[slices[j].shard];
            const auto range = session.intentRanges_[j];
            std::size_t consumed = 0;
            std::int64_t tomb_delta = 0;
            shard.poly().run(
                session.tokens_[slices[j].shard], [&](polytm::Tx &tx) {
                    consumed = 0; // retried attempts restart
                    tomb_delta = 0;
                    for (std::uint32_t k = range.first;
                         k < range.second; ++k) {
                        consumed += shard.finalizeIntentTx(
                                        tx, session.intents_[k],
                                        &tomb_delta)
                                        ? 1
                                        : 0;
                    }
                });
            if (consumed > 0)
                shard.noteConsumed(consumed);
            if (tomb_delta != 0)
                shard.noteTombstones(tomb_delta);
        }
        twoPhaseCommits_.add(1, slices[0].shard);
        recorder_.record(obs::TraceKind::kTwoPhaseFinalize, -1,
                         reserved_seq, session.intents_.size());
        return OpStatus::kDone;
    } catch (...) {
        // Foreign exception (e.g. bad_alloc) mid-protocol. Make the
        // record's fate terminal — kAborted unless the commit point
        // already passed — and retire the context: leftover intents
        // stay resolvable (writers fold/discard them on contact,
        // readers read through) and the memory stays valid.
        std::uint64_t expected = armed;
        ctx.record.status.compare_exchange_strong(
            expected,
            (armed & ~std::uint64_t{3}) | CommitRecord::kAborted,
            std::memory_order_acq_rel);
        // Staged blobs are freed only if the commit point was never
        // reached (they are live table values otherwise).
        const bool committed =
            CommitRecord::stateOf(ctx.record.status.load(
                std::memory_order_acquire)) == CommitRecord::kCommitted;
        if (durable() && !committed && wal_txid != 0) {
            // The prepares (and possibly some commit outcomes) are in
            // the logs but the live store aborted: log an abort
            // outcome everywhere — aborts win during recovery — so a
            // later crash cannot resurrect this transaction.
            // Best-effort: this path already handles bad_alloc.
            try {
                wal::Record outcome;
                outcome.type = wal::RecordType::kTxnOutcome;
                outcome.txid = wal_txid;
                outcome.committed = false;
                for (const auto &slice : slices)
                    wals_[slice.shard]->appendAndBarrier(outcome);
            } catch (...) {
            }
        }
        releaseStagedBlobs(session, committed);
        session.reclaim_.clear();
        {
            // Intrusive push: must not allocate — this very path
            // handles bad_alloc.
            std::lock_guard<std::mutex> lk(ctxMutex_);
            session.ctx_->next = std::move(graveyard_);
            graveyard_ = std::move(session.ctx_);
        }
        throw;
    }
}

KvStore::OpStatus
KvStore::multiOpLatched(Session &session, bool writes)
{
    const auto &grouped = session.scratch_;
    const auto &slices = session.slices_;

    PinSpan pin(shards_, session.tokens_, slices);

    // Releases latches (reverse order) even when a backend throws
    // something other than TxAbort mid-commit (e.g. bad_alloc):
    // leaked exclusive latches would wedge the shards for every
    // future operation.
    const auto release = [&](std::size_t locked) {
        while (locked > 0) {
            --locked;
            if (writes)
                latches_[slices[locked].shard]->unlock();
            else
                latches_[slices[locked].shard]->unlock_shared();
        }
    };

    bool full = false;
    std::uint32_t full_shard = 0;
    std::size_t full_capacity = 0;
    std::size_t locked = 0;
    try {
        // Shard-ordered latch acquisition: the slices come out of the
        // sort in ascending shard index, every participant uses the
        // same order, so no deadlock.
        for (const auto &slice : slices) {
            if (writes)
                latches_[slice.shard]->lock();
            else
                latches_[slice.shard]->lock_shared();
            ++locked;
        }

        if (!writes) {
            std::vector<std::uint64_t> reclaim;
            for (const auto &slice : slices) {
                Shard &shard = *shards_[slice.shard];
                // kGet-only slices can never fail on capacity.
                bool space_ok_unused = true;
                std::size_t consumed_unused = 0;
                std::int64_t tomb_unused = 0;
                shard.poly().run(
                    session.tokens_[slice.shard], [&](polytm::Tx &tx) {
                        applyOpsInTx(shard, tx,
                                     grouped.data() + slice.begin,
                                     grouped.data() + slice.end,
                                     space_ok_unused, consumed_unused,
                                     tomb_unused, reclaim);
                    });
            }
        } else {
            session.undo_.clear();
            session.undoRanges_.clear();
            session.reclaim_.clear();
            std::vector<std::uint64_t> slice_reclaim;
            std::vector<std::int64_t> tomb_deltas;
            std::size_t applied = 0;
            for (const auto &slice : slices) {
                Shard &shard = *shards_[slice.shard];
                const std::size_t cap = shard.capacity();
                const auto undo_mark = static_cast<std::uint32_t>(
                    session.undo_.size());
                std::int64_t tomb_delta = 0;
                try {
                    shard.poly().run(
                        session.tokens_[slice.shard],
                        [&](polytm::Tx &tx) {
                            applyOpsUndoTx(
                                shard, tx,
                                grouped.data() + slice.begin,
                                grouped.data() + slice.end,
                                session.undo_, undo_mark, tomb_delta,
                                slice_reclaim);
                        });
                } catch (const TableFullError &) {
                    full = true;
                    full_shard = slice.shard;
                    full_capacity = cap;
                }
                if (full)
                    break;
                session.undoRanges_.emplace_back(
                    undo_mark,
                    static_cast<std::uint32_t>(session.undo_.size()));
                tomb_deltas.push_back(tomb_delta);
                for (const std::uint64_t ref : slice_reclaim)
                    session.reclaim_.emplace_back(slice.shard, ref);
                ++applied;
            }
            if (full) {
                // The failing shard committed nothing (its transaction
                // rolled back); restore the earlier shards from the
                // compensation log, newest first, while the exclusive
                // latches still shut every other observer out.
                for (std::size_t j = applied; j-- > 0;) {
                    Shard &shard = *shards_[slices[j].shard];
                    const auto range = session.undoRanges_[j];
                    shard.poly().run(
                        session.tokens_[slices[j].shard],
                        [&](polytm::Tx &tx) {
                            restoreUndoRangeTx(shard, tx,
                                               session.undo_,
                                               range.first,
                                               range.second);
                        });
                }
                session.reclaim_.clear(); // pre-images restored
            } else {
                for (std::size_t j = 0; j < slices.size(); ++j) {
                    std::size_t consumed = 0;
                    const auto range = session.undoRanges_[j];
                    for (std::uint32_t k = range.first;
                         k < range.second; ++k) {
                        consumed +=
                            session.undo_[k].pre.state == kEmpty ? 1
                                                                 : 0;
                    }
                    if (consumed > 0)
                        shards_[slices[j].shard]->noteConsumed(
                            consumed);
                    if (tomb_deltas[j] != 0)
                        shards_[slices[j].shard]->noteTombstones(
                            tomb_deltas[j]);
                }
            }
        }
    } catch (...) {
        release(locked);
        throw;
    }
    release(locked);
    if (full) {
        Shard &shard = *shards_[full_shard];
        return shard.tryGrow(session.tokens_[full_shard], full_capacity)
                   ? OpStatus::kRetryAfterGrow
                   : OpStatus::kFailed;
    }
    return OpStatus::kDone;
}

KvResult
KvStore::applyBatch(Session &session, Batch &batch)
{
    if (const KvStatus gate = admitWrite(); gate != KvStatus::kOk)
        return gate;
    groupByShard(*this, options_.defaultTtlNanos, batch.ops_,
                 session.scratch_, session.slices_);
    const auto &grouped = session.scratch_;
    session.walStatus_ = KvStatus::kOk;
    for (std::size_t idx = 0; idx < grouped.size(); ++idx) {
        const TaggedOp &tagged = grouped[idx];
        KvOp *op = tagged.op;
        if (tagged.expiry != 0)
            shards_[tagged.shard]->noteTtlUsed();
        if (op->kind != KvOp::Kind::kPutBytes)
            continue;
        if (op->bytes.size() <= kValueRefInlineMax) {
            op->value =
                makeInlineRef(op->bytes.data(), op->bytes.size());
            continue;
        }
        try {
            op->value = shards_[tagged.shard]->arena().allocBlob(
                op->bytes.data(), op->bytes.size(),
                &session.arenaCaches_[tagged.shard]);
        } catch (const std::bad_alloc &) {
            // Nothing applied yet: recycle the blobs staged before
            // the failing one and reject the whole batch.
            for (std::size_t k = 0; k < idx; ++k) {
                const TaggedOp &prev = grouped[k];
                if (prev.op->kind == KvOp::Kind::kPutBytes &&
                    prev.op->bytes.size() > kValueRefInlineMax)
                    shards_[prev.shard]->arena().freeBlob(
                        prev.op->value,
                        &session.arenaCaches_[prev.shard]);
            }
            return KvStatus::kNoMemory;
        }
    }

    bool ok = true;
    std::vector<std::uint64_t> reclaim;
    if (durable())
        session.walBatchEnds_.assign(shards_.size(), 0);
    for (const auto &slice : session.slices_) {
        Shard &shard = *shards_[slice.shard];
        bool space_ok = true;
        std::size_t consumed = 0;
        std::int64_t tomb_delta = 0;
        std::uint64_t wal_end = 0;
        const auto run_ops = [&](const TaggedOp *begin,
                                 const TaggedOp *end) {
            std::uint64_t lsn = 0;
            runOnShard(session, slice.shard, [&](polytm::Tx &tx) {
                applyOpsInTx(shard, tx, begin, end, space_ok, consumed,
                             tomb_delta, reclaim,
                             durable() ? &session.walOps_ : nullptr);
                if (durable())
                    lsn = shard.walTicketTx(tx);
            });
            // Group commit: append now, ride ONE barrier per touched
            // shard at the end of its slice (the batch is the window).
            if (durable() && !session.walOps_.empty()) {
                wal::Record rec;
                rec.type = wal::RecordType::kBatch;
                rec.lsn = lsn;
                rec.ops = std::move(session.walOps_);
                const wal::AppendResult res =
                    wals_[slice.shard]->append(rec);
                wal_end = res.end;
                session.walOps_.clear();
                if (res.err != wal::WalError::kOk) {
                    const KvStatus wal_status =
                        committedBatchWalError(slice.shard, rec, res);
                    if (session.walStatus_ == KvStatus::kOk)
                        session.walStatus_ = wal_status;
                }
            }
            // This slice committed; batch-retire its displacements.
            retireDisplaced(session, slice.shard, reclaim);
            if (consumed > 0)
                shard.noteConsumed(consumed);
            if (tomb_delta != 0)
                shard.noteTombstones(tomb_delta);
        };
        std::size_t cap = shard.capacity();
        run_ops(grouped.data() + slice.begin,
                grouped.data() + slice.end);
        // Space-failed puts wrote nothing, so retrying exactly those
        // ops after a grow is per-shard exact (gets/dels/successful
        // puts are not replayed).
        while (!space_ok) {
            if (!shard.tryGrow(session.tokens_[slice.shard], cap)) {
                ok = false;
                break;
            }
            session.retryOps_.clear();
            for (std::uint32_t i = slice.begin; i < slice.end; ++i) {
                KvOp *op = grouped[i].op;
                if (!op->ok && (op->kind == KvOp::Kind::kPut ||
                                op->kind == KvOp::Kind::kPutBytes ||
                                op->kind == KvOp::Kind::kAdd))
                    session.retryOps_.push_back(grouped[i]);
            }
            cap = shard.capacity();
            run_ops(session.retryOps_.data(),
                    session.retryOps_.data() +
                        session.retryOps_.size());
        }
        // Record the slice's highest append end; the ONE barrier per
        // touched shard rides after every slice has appended, so no
        // shard's log writes interleave with another shard's fsync
        // stall (append ends are monotone — a grow-retry's second
        // append already left wal_end at the slice maximum).
        if (wal_end != 0)
            session.walBatchEnds_[slice.shard] = wal_end;
        // The batching loop doubles as the maintenance driver.
        shard.maintainTick(session.tokens_[slice.shard]);
    }
    if (durable()) {
        // Group commit across the whole batch: one barrier(maxEnd)
        // per touched shard (groupByShard emits one slice per shard,
        // so this pass is a single fsync each — the wal_test
        // fsync-coalescing case pins the count). Runs regardless of
        // `ok`: space-failed slices may still have appended records.
        for (const auto &slice : session.slices_) {
            const std::uint64_t end =
                session.walBatchEnds_[slice.shard];
            if (end != 0) {
                const wal::WalError e =
                    wals_[slice.shard]->barrier(end);
                if (e != wal::WalError::kOk &&
                    session.walStatus_ == KvStatus::kOk)
                    session.walStatus_ = onWalError(slice.shard, e);
            }
        }
    }
    if (!ok) {
        // Space-failed kPutBytes ops never published their staged
        // blob; without this sweep each capped-store failure would
        // strand the blob's arena capacity forever.
        for (const TaggedOp &tagged : grouped) {
            KvOp *op = tagged.op;
            if (op->kind == KvOp::Kind::kPutBytes && !op->ok &&
                op->bytes.size() > kValueRefInlineMax)
                shards_[tagged.shard]->arena().freeBlob(
                    op->value, &session.arenaCaches_[tagged.shard]);
        }
        return KvStatus::kNoSpace;
    }
    // The batch applied in memory; a WAL failure along the way means
    // it is NOT acknowledged durable.
    return session.walStatus_;
}

KvStatus
KvStore::logSingleOp(std::size_t s, std::uint64_t lsn, wal::WalOp op)
{
    wal::Record rec;
    rec.type = wal::RecordType::kBatch;
    rec.lsn = lsn;
    rec.ops.push_back(std::move(op));
    const wal::AppendResult res = wals_[s]->appendAndBarrier(rec);
    if (res.err == wal::WalError::kOk)
        return KvStatus::kOk;
    return committedBatchWalError(s, rec, res);
}

void
KvStore::raiseHealth(Health target, int shard)
{
    const auto want = static_cast<std::uint8_t>(target);
    std::uint8_t cur = health_.load(std::memory_order_acquire);
    while (cur < want) {
        if (health_.compare_exchange_weak(cur, want,
                                          std::memory_order_acq_rel)) {
            healthTransitions_.add(
                1, shard < 0 ? 0 : static_cast<std::size_t>(shard));
            recorder_.record(obs::TraceKind::kHealthTransition, shard,
                             commitSequence(), cur, want);
            std::fprintf(stderr,
                         "kvstore: health %s -> %s (shard %d)\n",
                         healthName(static_cast<Health>(cur)),
                         healthName(target), shard);
            return;
        }
        // cur reloaded by the failed CAS; stop if someone raised past
        // us (transitions are monotonic).
    }
}

KvStatus
KvStore::onWalError(std::size_t s, wal::WalError err)
{
    // The lock only matters for the kSyncLoss rescue (walGen_ and the
    // rotation race with checkpoints), but the path is cold and
    // taking it uniformly keeps one code shape.
    std::lock_guard<std::mutex> lk(walCkptMutex_);
    return onWalErrorLocked(s, err);
}

KvStatus
KvStore::onWalErrorLocked(std::size_t s, wal::WalError err)
{
    if (err == wal::WalError::kOk)
        return KvStatus::kOk;
    walErrors_.add(1, s);
    switch (err) {
      case wal::WalError::kNoSpace:
        // Space exhaustion loses nothing already acked: stop taking
        // writes, keep serving reads, let the operator free space and
        // restart.
        raiseHealth(Health::kDegradedReadOnly, static_cast<int>(s));
        return KvStatus::kReadOnly;
      case wal::WalError::kSyncLoss: {
        // fsyncgate: the kernel may have dropped the dirty pages, so
        // the failed range is permanently un-ackable. ONE rescue is
        // allowed: abandon the poisoned segment and continue on a
        // fresh generation (buffered-but-unwritten records carry
        // over). A second sync loss, or a failed rescue, degrades.
        if (wals_[s]->status() == wal::WalError::kOk)
            return KvStatus::kWalError; // racer already rescued
        if (wals_[s]->canRescue()) {
            const std::uint64_t gen = ++walGen_[s];
            const wal::WalError rescue = wals_[s]->rotateFresh(
                options_.walDir + "/" +
                wal::segmentFileName(static_cast<int>(s), gen));
            if (rescue == wal::WalError::kOk) {
                walRescues_.add(1, s);
                // The store stays healthy for FUTURE writes; the op
                // that hit the failure is still not acknowledged.
                return KvStatus::kWalError;
            }
        }
        raiseHealth(Health::kDegradedReadOnly, static_cast<int>(s));
        return KvStatus::kWalError;
      }
      case wal::WalError::kIo:
      default:
        // Hard I/O failure: this shard's log is gone and with it any
        // durability claim. Reads still serve from memory.
        raiseHealth(Health::kFailed, static_cast<int>(s));
        return KvStatus::kWalError;
    }
}

KvStatus
KvStore::committedBatchWalError(std::size_t s, wal::Record &rec,
                                const wal::AppendResult &res)
{
    const KvStatus status = onWalError(s, res.err);
    // res.end == 0 means the append failed fast against a sticky
    // error and the record never reached the log (a record that DID
    // enter either sits on the old fd or rides rotateFresh's buffer
    // carry-over). Its memory effects are visible regardless, so if
    // the rescue put this shard's log back in business, the batch
    // must follow it onto the fresh generation: replay sorts by LSN,
    // so a late re-append lands in its serialization slot.
    if (res.end == 0 && wals_[s]->status() == wal::WalError::kOk) {
        const wal::AppendResult retry =
            wals_[s]->appendAndBarrier(rec);
        if (retry.err != wal::WalError::kOk)
            return onWalError(s, retry.err);
    }
    return status;
}

void
KvStore::flushWal()
{
    for (auto &shard_wal : wals_)
        shard_wal->flushAll(options_.durability ==
                            Durability::kFsyncGroup);
}

bool
KvStore::checkpoint(Session &session)
{
    if (!durable())
        return true;
    // Concurrent checkpoints serialize; writers never wait on this
    // lock (the chunk walk shares the table only through the TM).
    std::lock_guard<std::mutex> lk(walCkptMutex_);
    bool ok = true;
    for (std::size_t s = 0; s < shards_.size(); ++s)
        ok &= checkpointShard(session, s);
    return ok;
}

bool
KvStore::checkpointShard(Session &session, std::size_t s)
{
    Shard &shard = *shards_[s];

    // A sticky-failed log cannot rotate; run it through the ladder
    // (which may rescue a sync loss onto a fresh generation) and skip
    // this round — the old checkpoints stay authoritative.
    if (wals_[s]->status() != wal::WalError::kOk) {
        walCkptFailures_.add(1, s);
        onWalErrorLocked(s, wals_[s]->status());
        return false;
    }

    // Retention floor: keep everything from the newest EXISTING
    // checkpoint's generation forward, so recovery can fall back to
    // the previous image (plus the segments written since it) if the
    // image written below turns out corrupt on disk.
    const std::vector<std::uint64_t> prev_ckpts =
        wal::listCheckpoints(options_.walDir, static_cast<int>(s));
    const std::uint64_t keep_gen =
        prev_ckpts.empty() ? 0 : prev_ckpts.back();
    const std::uint64_t gen = ++walGen_[s];

    // Rotate FIRST, then capture the barrier: every record in the old
    // segments then provably has lsn <= B (its ticket was drawn before
    // B's), so deleting them after the image lands loses nothing.
    // Writers racing the walk land with lsn > B — in the new segment
    // or double-captured by the image — and replay over it
    // idempotently (post-images).
    const wal::WalError rot =
        wals_[s]->rotate(options_.walDir + "/" +
                         wal::segmentFileName(static_cast<int>(s), gen));
    if (rot != wal::WalError::kOk) {
        walCkptFailures_.add(1, s);
        if (wals_[s]->status() != wal::WalError::kOk) {
            // The rotation flush poisoned the log (write/sync
            // failure): escalate through the ladder.
            onWalErrorLocked(s, wals_[s]->status());
        } else if (rot == wal::WalError::kNoSpace) {
            // New segment could not be opened for lack of space; the
            // log continues healthily on the old segment, but the
            // next append would hit the same wall.
            raiseHealth(Health::kDegradedReadOnly,
                        static_cast<int>(s));
        }
        return false;
    }
    std::uint64_t barrier = 0;
    shard.poly().run(session.tokens_[s], [&](polytm::Tx &tx) {
        barrier = shard.walTicketTx(tx);
    });
    recorder_.record(obs::TraceKind::kCkptBegin,
                     static_cast<std::int32_t>(s), commitSequence(),
                     barrier, gen);

    // Bounded transactional chunks; a table epoch change (grow /
    // compact) or an in-flight migration restarts the walk — the walk
    // needs one migration-free epoch, because migration relocates
    // keys across regions it already visited.
    std::vector<Shard::CheckpointEntry> entries;
    std::uint64_t chunks = 0;
    shard.drainMigration(session.tokens_[s]);
    Shard::CheckpointCursor cursor;
    for (;;) {
        const Shard::CkptStep step = shard.checkpointChunk(
            session.tokens_[s], &cursor, &entries,
            options_.checkpointChunkSlots);
        ++chunks;
        walCkptChunks_.add(1, s);
        if (step == Shard::CkptStep::kDone)
            break;
        if (step == Shard::CkptStep::kRestart) {
            entries.clear();
            cursor = Shard::CheckpointCursor{};
            shard.drainMigration(session.tokens_[s]);
        }
    }

    wal::CheckpointImage image;
    image.barrierLsn = barrier;
    image.entries.reserve(entries.size());
    for (Shard::CheckpointEntry &entry : entries) {
        wal::WalOp op;
        op.key = entry.key;
        op.expiry = entry.expiry;
        if (entry.isBytes) {
            op.kind = wal::WalOp::Kind::kPutBytes;
            op.bytes = std::move(entry.bytes);
        } else {
            op.kind = wal::WalOp::Kind::kPut;
            op.value = entry.value;
        }
        image.entries.push_back(std::move(op));
    }
    const wal::WalError werr = wal::writeCheckpoint(
        options_.walDir + "/" +
            wal::checkpointFileName(static_cast<int>(s), gen),
        image);
    if (werr != wal::WalError::kOk) {
        // Non-fatal: the tmp file was discarded, the previous
        // checkpoint and every segment since it still recover the
        // shard — just skip truncation. Only space exhaustion
        // escalates (the next one would fail the same way).
        walCkptFailures_.add(1, s);
        if (werr == wal::WalError::kNoSpace)
            raiseHealth(Health::kDegradedReadOnly,
                        static_cast<int>(s));
        return false;
    }
    // A sticky-failed sibling log may hold durable prepares whose
    // only surviving outcome copies live in OTHER shards' segments;
    // truncating those would orphan the prepares into in-doubt
    // aborts while the flipped effects sit in checkpoint images. A
    // shard goes sticky before any such flip can reach an image, so
    // checking here (after the scan, before deletion) is sufficient.
    bool all_logs_ok = true;
    for (const auto &shard_wal : wals_)
        if (shard_wal->status() != wal::WalError::kOk)
            all_logs_ok = false;
    if (all_logs_ok)
        wal::deleteObsolete(options_.walDir, static_cast<int>(s),
                            keep_gen);
    recorder_.record(obs::TraceKind::kCkptEnd,
                     static_cast<std::int32_t>(s), commitSequence(),
                     image.entries.size(), chunks);
    return true;
}

KvStore::SnapshotReadStats
KvStore::snapshotReadStats() const
{
    // Thin view over the registry counters (the instruments ARE the
    // stats now); kept so existing callers and tests stay source-
    // compatible.
    SnapshotReadStats out;
    out.rounds = snapRounds_.total();
    out.retries = snapRetries_.total();
    out.escalations = snapEscalations_.total();
    for (const auto &shard : shards_)
        out.pendingWaits += shard->snapshotPendingWaits();
    return out;
}

obs::TelemetrySnapshot
KvStore::telemetry() const
{
    obs::TelemetrySnapshot snap = metrics_.snapshot();
    snap.commitSeq = commitSequence();
    return snap;
}

void
KvStore::noteRetune(int shard, std::uint64_t packedConfigs,
                    std::uint64_t kpiBits)
{
    retunes_.add(1, static_cast<std::size_t>(shard));
    recorder_.record(obs::TraceKind::kRetune, shard, commitSequence(),
                     packedConfigs, kpiBits);
}

polytm::PolyStats
KvStore::totalStats() const
{
    polytm::PolyStats total;
    for (const auto &shard : shards_) {
        const polytm::PolyStats stats = shard->poly().snapshotStats();
        total.commits += stats.commits;
        total.aborts += stats.aborts;
        for (std::size_t c = 0; c < total.abortsByCause.size(); ++c)
            total.abortsByCause[c] += stats.abortsByCause[c];
    }
    return total;
}

void
KvStore::resumeAllForShutdown()
{
    for (auto &shard : shards_)
        shard->poly().resumeAllForShutdown();
}

} // namespace proteus::kvstore
