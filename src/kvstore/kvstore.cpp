#include "kvstore/kvstore.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace proteus::kvstore {

namespace {

/** Shard router hash — distinct from the in-shard slot hash so shard
 *  choice and slot choice stay uncorrelated. */
std::uint64_t
routeMix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    return x ^ (x >> 33);
}

/**
 * Thrown out of a transaction body when a put/add finds no slot. A
 * foreign (non-TxAbort) exception, so PolyTm::run rolls the open
 * transaction back — nothing of the failing shard commits — and
 * rethrows for the multiOp driver to unwind the other shards.
 */
struct TableFullError
{
};

/** Restore logical pre-images [begin, end) from the compensation log,
 *  newest first, inside `tx`. Shared by the in-transaction revert on
 *  irrevocable backends and the latch-mode cross-shard unwind. */
void
restoreUndoRangeTx(Shard &shard, polytm::Tx &tx,
                   const std::vector<KvStore::Session::Undo> &undo,
                   std::size_t begin, std::size_t end)
{
    for (std::size_t k = end; k-- > begin;) {
        const KvStore::Session::Undo &pre = undo[k];
        if (pre.existed)
            shard.putTx(tx, pre.key, pre.oldValue);
        else
            shard.delTx(tx, pre.key);
    }
}

} // namespace

KvStore::KvStore(KvStoreOptions options)
    : commitMode_(options.commitMode)
{
    if (options.numShards <= 0)
        throw std::invalid_argument("KvStore: numShards must be >= 1");
    shards_.reserve(static_cast<std::size_t>(options.numShards));
    latches_.reserve(static_cast<std::size_t>(options.numShards));
    shardSeqs_.reserve(static_cast<std::size_t>(options.numShards));
    for (int s = 0; s < options.numShards; ++s) {
        ShardOptions shard_options;
        shard_options.log2Slots = options.log2SlotsPerShard;
        shard_options.initial = options.initial;
        shards_.push_back(std::make_unique<Shard>(shard_options));
        latches_.push_back(std::make_unique<std::shared_mutex>());
        shardSeqs_.push_back(
            std::make_unique<std::atomic<std::uint64_t>>(0));
    }
}

std::size_t
KvStore::shardOf(std::uint64_t key) const
{
    return static_cast<std::size_t>(routeMix(key) % shards_.size());
}

KvStore::~KvStore()
{
    for (auto *list : {&graveyard_, &ctxPool_}) {
        while (*list)
            *list = std::move((*list)->next);
    }
}

KvStore::Session::~Session()
{
    if (!store_)
        return;
    // Same teardown as closeSession, so stack unwinding between
    // openSession and closeSession leaks neither thread slots nor the
    // commit context (deregisterThread is adminMutex-protected).
    for (std::size_t s = 0; s < tokens_.size(); ++s)
        store_->shards_[s]->deregisterWorker(tokens_[s]);
    if (ctx_)
        store_->retireContext(std::move(ctx_));
}

void
KvStore::retireContext(std::unique_ptr<CommitContext> ctx) noexcept
{
    std::lock_guard<std::mutex> lk(ctxMutex_);
    ctx->next = std::move(ctxPool_);
    ctxPool_ = std::move(ctx);
}

KvStore::Session
KvStore::openSession()
{
    Session session;
    session.store_ = this;
    session.tokens_.reserve(shards_.size());
    {
        // Recycle a cleanly retired commit context (every intent
        // cleared before its previous owner closed); the epoch in its
        // record keeps any stale readers of the old generation safe.
        std::lock_guard<std::mutex> lk(ctxMutex_);
        if (ctxPool_) {
            session.ctx_ = std::move(ctxPool_);
            ctxPool_ = std::move(session.ctx_->next);
        }
    }
    // Thread-slot exhaustion mid-loop is safe: ~Session gives back
    // the prefix of slots we took and parks the pooled commit
    // context (freeing it would break the never-free invariant).
    for (auto &shard : shards_)
        session.tokens_.push_back(shard->registerWorker());
    return session;
}

void
KvStore::closeSession(Session &session)
{
    for (std::size_t s = 0; s < session.tokens_.size(); ++s)
        shards_[s]->deregisterWorker(session.tokens_[s]);
    session.tokens_.clear();
    if (session.ctx_) {
        // Park for reuse, don't free: a reader transaction that
        // loaded one of this session's intent pointers may still
        // dereference it (and then fail validation on the changed,
        // epoch-tagged word); the memory must outlive it. Every
        // intent was cleared before the owning multiOp returned, so
        // the context is clean — exception-poisoned contexts never
        // get here (multiOpTwoPhaseWrite graveyards them directly).
        retireContext(std::move(session.ctx_));
    }
}

bool
KvStore::get(Session &session, std::uint64_t key, std::uint64_t *value)
{
    const std::size_t s = shardOf(key);
    bool ok = false;
    runOnShard(session, s, [&](polytm::Tx &tx) {
        ok = shards_[s]->getTx(tx, key, value);
    });
    return ok;
}

bool
KvStore::put(Session &session, std::uint64_t key, std::uint64_t value)
{
    const std::size_t s = shardOf(key);
    bool ok = false;
    runOnShard(session, s, [&](polytm::Tx &tx) {
        ok = shards_[s]->putTx(tx, key, value);
    });
    return ok;
}

bool
KvStore::del(Session &session, std::uint64_t key)
{
    const std::size_t s = shardOf(key);
    bool ok = false;
    runOnShard(session, s, [&](polytm::Tx &tx) {
        ok = shards_[s]->delTx(tx, key);
    });
    return ok;
}

std::size_t
KvStore::scan(Session &session, std::uint64_t start_key,
              std::size_t limit,
              std::vector<std::pair<std::uint64_t, std::uint64_t>> *out)
{
    const std::size_t s = shardOf(start_key);
    std::size_t count = 0;
    // Retry while the scan resolved a PENDING intent (see
    // Shard::scan): its commit could flip between two of this scan's
    // slot resolutions and tear a same-shard composite.
    for (;;) {
        bool unstable = false;
        runOnShard(session, s, [&](polytm::Tx &tx) {
            count =
                shards_[s]->scanTx(tx, start_key, limit, out, &unstable);
        });
        if (!unstable)
            return count;
        std::this_thread::yield();
    }
}

namespace {

using TaggedOp = std::pair<std::uint32_t, KvOp *>;

/** Apply one shard's slice of a composite op inside a transaction
 *  (batch path: per-shard semantics, fitting prefix commits). */
void
applyOpsInTx(Shard &shard, polytm::Tx &tx, const TaggedOp *begin,
             const TaggedOp *end, bool &space_ok)
{
    space_ok = true; // retried attempts restart the accumulation
    for (const TaggedOp *it = begin; it != end; ++it) {
        KvOp *op = it->second;
        switch (op->kind) {
          case KvOp::Kind::kGet:
            // getForUpdateTx, not getTx: batch results are documented
            // per-shard atomic, so reads resolve foreign intents the
            // way the write primitives do — a non-blocking pre-image
            // could straddle a commit flip against another read or be
            // contradicted by a fold under a later write of the same
            // key (irrevocable backends never re-run the read).
            op->ok = shard.getForUpdateTx(tx, op->key, &op->value);
            break;
          case KvOp::Kind::kPut:
            op->ok = shard.putTx(tx, op->key, op->value);
            space_ok &= op->ok;
            break;
          case KvOp::Kind::kDel:
            op->ok = shard.delTx(tx, op->key);
            break;
          case KvOp::Kind::kAdd:
            op->ok = shard.addTx(tx, op->key,
                                 static_cast<std::int64_t>(op->value));
            space_ok &= op->ok;
            break;
        }
    }
}

/**
 * Writing multiOp slice with all-or-nothing semantics (latch mode and
 * the single-shard fast path): like applyOpsInTx but records a
 * pre-image per write into the compensation log and raises
 * TableFullError instead of committing a shard-local prefix. On an
 * irrevocable backend (global lock, HTM fallback holder) the writes
 * already hit memory and rollback() cannot undo them, so the failing
 * attempt's effects are reverted from the log, in place, before the
 * throw.
 */
void
applyOpsUndoTx(Shard &shard, polytm::Tx &tx, const TaggedOp *begin,
               const TaggedOp *end,
               std::vector<KvStore::Session::Undo> &undo,
               std::size_t undo_mark)
{
    undo.resize(undo_mark); // retried attempts restart the log
    const auto fail_full = [&]() {
        if (!tx.revocable())
            restoreUndoRangeTx(shard, tx, undo, undo_mark, undo.size());
        throw TableFullError{};
    };
    for (const TaggedOp *it = begin; it != end; ++it) {
        KvOp *op = it->second;
        if (op->kind == KvOp::Kind::kGet) {
            // Writing-composite reads resolve foreign intents like
            // writers (see Shard::prepareGetTx): a non-blocking
            // pre-image here could be contradicted by a fold under a
            // later write of the same key on an irrevocable backend.
            op->ok = shard.getForUpdateTx(tx, op->key, &op->value);
            continue;
        }
        // The write primitives report the displaced pre-image from
        // their own (intent-resolving) probe walk — taken after any
        // foreign intent is folded, so an abort-time restore never
        // erases a foreign commit's write. A failed put/add wrote
        // nothing, so nothing is logged for it.
        KvStore::Session::Undo pre{op->key, 0, false};
        switch (op->kind) {
          case KvOp::Kind::kPut:
            op->ok = shard.putTx(tx, op->key, op->value, &pre.existed,
                                 &pre.oldValue);
            break;
          case KvOp::Kind::kDel:
            op->ok = shard.delTx(tx, op->key, &pre.oldValue);
            pre.existed = op->ok;
            break;
          case KvOp::Kind::kAdd:
            op->ok = shard.addTx(tx, op->key,
                                 static_cast<std::int64_t>(op->value),
                                 &pre.existed, &pre.oldValue);
            break;
          default:
            break;
        }
        if ((op->kind == KvOp::Kind::kPut ||
             op->kind == KvOp::Kind::kAdd) &&
            !op->ok)
            fail_full();
        undo.push_back(pre);
    }
}

/**
 * Group `ops` by home shard into the session's reusable scratch:
 * each shard index is computed exactly once, a stable sort on the
 * cached index preserves program order within one shard, and the
 * contiguous slices are recorded so the pin/prepare/finalize passes
 * walk a precomputed list. Steady state allocates nothing.
 */
void
groupByShard(const KvStore &store, std::vector<KvOp> &ops,
             std::vector<TaggedOp> &scratch,
             std::vector<KvStore::Session::ShardSlice> &slices)
{
    scratch.clear();
    scratch.reserve(ops.size());
    for (KvOp &op : ops) {
        scratch.emplace_back(
            static_cast<std::uint32_t>(store.shardOf(op.key)), &op);
    }
    std::stable_sort(scratch.begin(), scratch.end(),
                     [](const TaggedOp &a, const TaggedOp &b) {
                         return a.first < b.first;
                     });
    slices.clear();
    for (std::uint32_t i = 0; i < scratch.size();) {
        std::uint32_t end = i;
        while (end < scratch.size() &&
               scratch[end].first == scratch[i].first)
            ++end;
        slices.push_back({scratch[i].first, i, end});
        i = end;
    }
}

/**
 * Pin the session's tokens on every touched shard for a multiOp's
 * critical span (latched region / prepare-to-finalize window): a
 * parked thread must not strand an exclusive latch or a PENDING
 * intent, and pinning bounds gate pauses to in-flight algorithm
 * switches (paper §4.2).
 */
class PinSpan
{
  public:
    PinSpan(std::vector<std::unique_ptr<Shard>> &shards,
            std::vector<polytm::ThreadToken> &tokens,
            const std::vector<KvStore::Session::ShardSlice> &slices)
        : shards_(shards), tokens_(tokens), slices_(slices)
    {
        for (const auto &slice : slices_)
            shards_[slice.shard]->poly().setPinned(
                tokens_[slice.shard].tid, true);
    }

    ~PinSpan()
    {
        for (const auto &slice : slices_)
            shards_[slice.shard]->poly().setPinned(
                tokens_[slice.shard].tid, false);
    }

  private:
    std::vector<std::unique_ptr<Shard>> &shards_;
    std::vector<polytm::ThreadToken> &tokens_;
    const std::vector<KvStore::Session::ShardSlice> &slices_;
};

} // namespace

bool
KvStore::multiOp(Session &session, std::vector<KvOp> &ops)
{
    bool writes = false;
    for (const KvOp &op : ops)
        writes |= op.kind != KvOp::Kind::kGet;
    groupByShard(*this, ops, session.scratch_, session.slices_);
    if (session.slices_.empty())
        return true;
    // Single-shard fast path: one TM transaction is already atomic.
    // Writing composites take it only under kTwoPhase — in latch mode
    // the exclusive latch is what orders them against the shared-latch
    // snapshot readers, so they keep the full protocol.
    if (session.slices_.size() == 1 &&
        (!writes || commitMode_ == CommitMode::kTwoPhase))
        return multiOpSingleShard(session, writes);
    if (commitMode_ == CommitMode::kTwoPhase) {
        return writes ? multiOpTwoPhaseWrite(session)
                      : multiOpTwoPhaseRead(session);
    }
    return multiOpLatched(session, writes);
}

bool
KvStore::multiOpSingleShard(Session &session, bool writes)
{
    const auto &grouped = session.scratch_;
    const auto &slice = session.slices_[0];
    Shard &shard = *shards_[slice.shard];
    if (writes) {
        // One TM transaction is atomic to every observer on this
        // shard — no latches, intents, or compensation across shards
        // needed. Table-full throws out of the (rolled-back or
        // self-reverted) transaction for all-or-nothing. The shard
        // sequence is bumped BEFORE the transaction so a snapshot
        // round can never pair this commit's post-image with another
        // shard's pre-image and still validate (bumping after the
        // commit would reopen the straddle window; a bump for an
        // aborted attempt only costs readers a spurious retry).
        shardSeqs_[slice.shard]->fetch_add(1,
                                           std::memory_order_acq_rel);
        session.undo_.clear();
        try {
            runOnShard(session, slice.shard, [&](polytm::Tx &tx) {
                applyOpsUndoTx(shard, tx,
                               grouped.data() + slice.begin,
                               grouped.data() + slice.end,
                               session.undo_, 0);
            });
        } catch (const TableFullError &) {
            return false;
        }
        return true;
    }
    // Read-only: one transaction is per-shard consistent; retry only
    // while some read resolved a still-PENDING intent (its commit
    // could flip between two of this transaction's resolutions).
    for (;;) {
        bool unstable = false;
        runOnShard(session, slice.shard, [&](polytm::Tx &tx) {
            unstable = false; // retried attempts restart
            for (std::uint32_t i = slice.begin; i < slice.end; ++i) {
                KvOp *op = grouped[i].second;
                op->ok = shard.snapshotGetTx(tx, op->key, &op->value,
                                             &unstable);
            }
        });
        if (!unstable)
            return true;
        std::this_thread::yield();
    }
}

bool
KvStore::multiOpTwoPhaseRead(Session &session)
{
    const auto &grouped = session.scratch_;
    const auto &slices = session.slices_;
    // Commit-sequence-validated snapshot: each shard's reads are one
    // TM transaction (intent-resolving, non-blocking). The round is
    // trustworthy only if (a) no cross-shard commit bumped a *touched*
    // shard's sequence inside it — the bumps precede the status flip,
    // and any read that observed a post-image synchronizes with that
    // flip, so a flip the round straddles is always visible in the
    // trailing check — and (b) no read resolved a still-PENDING
    // intent to its pre-image (that commit may have flipped mid-round
    // without this round observing any of its post-images' ordering).
    // Commits touching only other shards never force a retry.
    // Single-key writers are not serialized against (see the contract
    // in kvstore.hpp).
    for (;;) {
        bool unstable = false;
        session.seqSnapshot_.clear();
        for (const auto &slice : slices) {
            session.seqSnapshot_.push_back(
                shardSeqs_[slice.shard]->load(
                    std::memory_order_acquire));
        }
        for (const auto &slice : slices) {
            Shard &shard = *shards_[slice.shard];
            bool shard_unstable = false;
            shard.poly().run(
                session.tokens_[slice.shard], [&](polytm::Tx &tx) {
                    shard_unstable = false; // retried attempts restart
                    for (std::uint32_t i = slice.begin; i < slice.end;
                         ++i) {
                        KvOp *op = grouped[i].second;
                        op->ok = shard.snapshotGetTx(
                            tx, op->key, &op->value, &shard_unstable);
                    }
                });
            unstable |= shard_unstable;
        }
        bool stable = !unstable;
        for (std::size_t j = 0; stable && j < slices.size(); ++j) {
            stable = shardSeqs_[slices[j].shard]->load(
                         std::memory_order_acquire) ==
                     session.seqSnapshot_[j];
        }
        if (stable)
            return true;
        std::this_thread::yield();
    }
}

bool
KvStore::multiOpTwoPhaseWrite(Session &session)
{
    const auto &grouped = session.scratch_;
    const auto &slices = session.slices_;
    if (!session.ctx_)
        session.ctx_ = std::make_unique<CommitContext>();
    CommitContext &ctx = *session.ctx_;

    PinSpan pin(shards_, session.tokens_, slices);

    // Re-arm the session's commit record under the next epoch. Legal:
    // every intent of the previous multiOp was cleared before it
    // returned, so no live intent word reaches this record any more —
    // and a stale resolver that still holds one sees an epoch-tagged
    // word that no longer matches the status, so it can never apply
    // this generation's verdict to the old generation's payload.
    const std::uint64_t armed =
        ((CommitRecord::epochOf(ctx.record.status.load(
              std::memory_order_relaxed)) +
          1)
         << 2) |
        CommitRecord::kPending;
    ctx.record.status.store(armed, std::memory_order_release);
    ctx.arena.reset();
    session.intents_.clear();
    session.intentRanges_.clear();

    try {
        // Phase 1: prepare, in ascending shard order. A conflicting
        // preparer only ever waits on lower-numbered shards' pending
        // intents it meets while preparing a higher one — wait chains
        // strictly ascend, so they cannot cycle.
        bool full = false;
        std::size_t prepared = 0;
        for (const auto &slice : slices) {
            Shard &shard = *shards_[slice.shard];
            const std::size_t arena_mark = ctx.arena.mark();
            const auto intents_mark =
                static_cast<std::uint32_t>(session.intents_.size());
            try {
                shard.poly().run(
                    session.tokens_[slice.shard], [&](polytm::Tx &tx) {
                        // Retried attempts restart this shard's
                        // intent allocation.
                        ctx.arena.rewindTo(arena_mark);
                        session.intents_.resize(intents_mark);
                        // On an irrevocable backend the prepare's
                        // writes are already in place and rollback()
                        // cannot undo them — discard this attempt's
                        // published intents by hand before raising.
                        const auto fail_full = [&]() {
                            if (!tx.revocable()) {
                                for (std::size_t k =
                                         session.intents_.size();
                                     k-- > intents_mark;) {
                                    shard.abortIntentTx(
                                        tx, session.intents_[k]);
                                }
                            }
                            throw TableFullError{};
                        };
                        for (std::uint32_t i = slice.begin;
                             i < slice.end; ++i) {
                            KvOp *op = grouped[i].second;
                            switch (op->kind) {
                              case KvOp::Kind::kGet:
                                op->ok = shard.prepareGetTx(
                                    tx, &ctx.record, op->key,
                                    &op->value);
                                break;
                              case KvOp::Kind::kPut:
                                if (!shard.preparePutTx(
                                        tx, &ctx.record, ctx.arena,
                                        session.intents_, op->key,
                                        op->value, &op->ok))
                                    fail_full();
                                break;
                              case KvOp::Kind::kDel:
                                shard.prepareDelTx(
                                    tx, &ctx.record, ctx.arena,
                                    session.intents_, op->key,
                                    &op->ok);
                                break;
                              case KvOp::Kind::kAdd:
                                if (!shard.prepareAddTx(
                                        tx, &ctx.record, ctx.arena,
                                        session.intents_, op->key,
                                        static_cast<std::int64_t>(
                                            op->value),
                                        &op->ok))
                                    fail_full();
                                break;
                            }
                        }
                    });
            } catch (const TableFullError &) {
                full = true;
            }
            if (full)
                break;
            session.intentRanges_.emplace_back(
                intents_mark,
                static_cast<std::uint32_t>(session.intents_.size()));
            ++prepared;
        }

        if (full) {
            // All-or-nothing: nothing committed on the failing shard
            // (its transaction rolled back), and the already-prepared
            // shards only hold invisible intents — mark the record
            // aborted and discard them.
            ctx.record.status.store((armed & ~std::uint64_t{3}) |
                                        CommitRecord::kAborted,
                                    std::memory_order_release);
            for (std::size_t j = 0; j < prepared; ++j) {
                Shard &shard = *shards_[slices[j].shard];
                const auto range = session.intentRanges_[j];
                shard.poly().run(
                    session.tokens_[slices[j].shard],
                    [&](polytm::Tx &tx) {
                        for (std::uint32_t k = range.first;
                             k < range.second; ++k)
                            shard.abortIntentTx(tx,
                                                session.intents_[k]);
                    });
            }
            return false;
        }

        // Phase 2: the commit point. One store makes every intent's
        // post-image the live value on all shards at once. The
        // sequence bumps come FIRST: any snapshot round that observes
        // one of this commit's post-images synchronizes with the flip
        // below and therefore must see the bumps in its trailing
        // sequence check — bumping after the flip would leave a
        // window in which a round could read a torn pre/post mix and
        // still validate.
        for (const auto &slice : slices)
            shardSeqs_[slice.shard]->fetch_add(
                1, std::memory_order_acq_rel);
        commitSeq_.fetch_add(1, std::memory_order_acq_rel);
        ctx.record.status.store((armed & ~std::uint64_t{3}) |
                                    CommitRecord::kCommitted,
                                std::memory_order_release);

        // Phase 3: finalize — fold intents into the slot words so the
        // record can be re-armed. Observers that get there first help,
        // so each fold is conditional on the intent still standing.
        for (std::size_t j = 0; j < slices.size(); ++j) {
            Shard &shard = *shards_[slices[j].shard];
            const auto range = session.intentRanges_[j];
            shard.poly().run(
                session.tokens_[slices[j].shard], [&](polytm::Tx &tx) {
                    for (std::uint32_t k = range.first;
                         k < range.second; ++k)
                        shard.finalizeIntentTx(tx,
                                               session.intents_[k]);
                });
        }
        return true;
    } catch (...) {
        // Foreign exception (e.g. bad_alloc) mid-protocol. Make the
        // record's fate terminal — kAborted unless the commit point
        // already passed — and retire the context: leftover intents
        // stay resolvable (writers fold/discard them on contact,
        // readers read through) and the memory stays valid.
        std::uint64_t expected = armed;
        ctx.record.status.compare_exchange_strong(
            expected,
            (armed & ~std::uint64_t{3}) | CommitRecord::kAborted,
            std::memory_order_acq_rel);
        {
            // Intrusive push: must not allocate — this very path
            // handles bad_alloc.
            std::lock_guard<std::mutex> lk(ctxMutex_);
            session.ctx_->next = std::move(graveyard_);
            graveyard_ = std::move(session.ctx_);
        }
        throw;
    }
}

bool
KvStore::multiOpLatched(Session &session, bool writes)
{
    const auto &grouped = session.scratch_;
    const auto &slices = session.slices_;

    PinSpan pin(shards_, session.tokens_, slices);

    // Releases latches (reverse order) even when a backend throws
    // something other than TxAbort mid-commit (e.g. bad_alloc):
    // leaked exclusive latches would wedge the shards for every
    // future operation.
    const auto release = [&](std::size_t locked) {
        while (locked > 0) {
            --locked;
            if (writes)
                latches_[slices[locked].shard]->unlock();
            else
                latches_[slices[locked].shard]->unlock_shared();
        }
    };

    bool ok = true;
    std::size_t locked = 0;
    try {
        // Shard-ordered latch acquisition: the slices come out of the
        // sort in ascending shard index, every participant uses the
        // same order, so no deadlock.
        for (const auto &slice : slices) {
            if (writes)
                latches_[slice.shard]->lock();
            else
                latches_[slice.shard]->lock_shared();
            ++locked;
        }

        if (!writes) {
            for (const auto &slice : slices) {
                Shard &shard = *shards_[slice.shard];
                // kGet-only slices can never fail on capacity.
                bool space_ok_unused = true;
                shard.poly().run(
                    session.tokens_[slice.shard], [&](polytm::Tx &tx) {
                        applyOpsInTx(shard, tx,
                                     grouped.data() + slice.begin,
                                     grouped.data() + slice.end,
                                     space_ok_unused);
                    });
            }
        } else {
            session.undo_.clear();
            session.undoRanges_.clear();
            bool full = false;
            std::size_t applied = 0;
            for (const auto &slice : slices) {
                Shard &shard = *shards_[slice.shard];
                const auto undo_mark = static_cast<std::uint32_t>(
                    session.undo_.size());
                try {
                    shard.poly().run(
                        session.tokens_[slice.shard],
                        [&](polytm::Tx &tx) {
                            applyOpsUndoTx(
                                shard, tx,
                                grouped.data() + slice.begin,
                                grouped.data() + slice.end,
                                session.undo_, undo_mark);
                        });
                } catch (const TableFullError &) {
                    full = true;
                }
                if (full)
                    break;
                session.undoRanges_.emplace_back(
                    undo_mark,
                    static_cast<std::uint32_t>(session.undo_.size()));
                ++applied;
            }
            if (full) {
                // The failing shard committed nothing (its transaction
                // rolled back); restore the earlier shards from the
                // compensation log, newest first, while the exclusive
                // latches still shut every other observer out.
                for (std::size_t j = applied; j-- > 0;) {
                    Shard &shard = *shards_[slices[j].shard];
                    const auto range = session.undoRanges_[j];
                    shard.poly().run(
                        session.tokens_[slices[j].shard],
                        [&](polytm::Tx &tx) {
                            restoreUndoRangeTx(shard, tx,
                                               session.undo_,
                                               range.first,
                                               range.second);
                        });
                }
                ok = false;
            }
        }
    } catch (...) {
        release(locked);
        throw;
    }
    release(locked);
    return ok;
}

bool
KvStore::applyBatch(Session &session, Batch &batch)
{
    groupByShard(*this, batch.ops_, session.scratch_, session.slices_);
    const auto &grouped = session.scratch_;

    bool ok = true;
    for (const auto &slice : session.slices_) {
        Shard &shard = *shards_[slice.shard];
        bool space_ok = true;
        runOnShard(session, slice.shard, [&](polytm::Tx &tx) {
            applyOpsInTx(shard, tx, grouped.data() + slice.begin,
                         grouped.data() + slice.end, space_ok);
        });
        ok &= space_ok;
    }
    return ok;
}

polytm::PolyStats
KvStore::totalStats() const
{
    polytm::PolyStats total;
    for (const auto &shard : shards_) {
        const polytm::PolyStats stats = shard->poly().snapshotStats();
        total.commits += stats.commits;
        total.aborts += stats.aborts;
        for (std::size_t c = 0; c < total.abortsByCause.size(); ++c)
            total.abortsByCause[c] += stats.abortsByCause[c];
    }
    return total;
}

void
KvStore::resumeAllForShutdown()
{
    for (auto &shard : shards_)
        shard->poly().resumeAllForShutdown();
}

} // namespace proteus::kvstore
