/**
 * @file
 * RecTmEngine: the full RecTM work-flow of Algorithm 2 —
 *  1. ingest the off-line training KPI matrix,
 *  2. rating distillation (or a competitor normalizer),
 *  3. CF algorithm selection + hyper tuning (random search, CV),
 *  4. bagging-ensemble instantiation,
 *  5. per-workload SMBO optimization episodes on demand.
 */

#ifndef PROTEUS_RECTM_ENGINE_HPP
#define PROTEUS_RECTM_ENGINE_HPP

#include <functional>
#include <memory>

#include "rectm/cf_tuner.hpp"
#include "rectm/ensemble.hpp"
#include "rectm/normalizer.hpp"
#include "rectm/smbo.hpp"

namespace proteus::rectm {

class RecTmEngine
{
  public:
    struct Options
    {
        NormalizerKind normalizer = NormalizerKind::kDistillation;
        int bags = 10; // paper §5.2
        TunerOptions tuner{};
        std::uint64_t seed = 0xe61e;
    };

    /**
     * @param training_goodness dense workload x config matrix of
     *        maximize-oriented KPI values (see toGoodness)
     */
    RecTmEngine(const UtilityMatrix &training_goodness, Options options);

    const Normalizer &normalizer() const { return *normalizer_; }
    Normalizer &normalizerMutable() { return *normalizer_; }
    const BaggingEnsemble &ensemble() const { return *ensemble_; }
    int referenceColumn() const { return normalizer_->referenceColumn(); }
    std::size_t numConfigs() const { return numConfigs_; }
    const std::string &modelDescription() const { return modelDesc_; }
    double tunerCvMape() const { return cvMape_; }

    /**
     * Optimize one workload: `sample(c)` measures its live goodness
     * at configuration c.
     */
    SmboResult
    optimize(const std::function<double(std::size_t)> &sample,
             const SmboOptions &smbo = {}) const
    {
        return optimizeWorkload(*ensemble_, *normalizer_, numConfigs_,
                                sample, smbo);
    }

    /**
     * Predicted goodness of every configuration given the sparse
     * goodness samples gathered so far (for accuracy metrics).
     */
    std::vector<double>
    predictAllGoodness(const std::vector<double> &query_goodness) const;

  private:
    std::size_t numConfigs_;
    std::unique_ptr<Normalizer> normalizer_;
    std::unique_ptr<BaggingEnsemble> ensemble_;
    std::string modelDesc_;
    double cvMape_ = 0;
};

} // namespace proteus::rectm

#endif // PROTEUS_RECTM_ENGINE_HPP
