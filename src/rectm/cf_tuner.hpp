/**
 * @file
 * CF algorithm selection + hyper-parameter tuning (paper §5.1):
 * random search over {KNN(k, similarity), MF(dims, epochs, lr, reg)}
 * evaluated by n-fold cross-validation on the training rating matrix.
 * Held-out rows are reduced to a few known entries (mimicking online
 * sparsity) and scored by MAPE on the hidden ones.
 */

#ifndef PROTEUS_RECTM_CF_TUNER_HPP
#define PROTEUS_RECTM_CF_TUNER_HPP

#include <memory>
#include <string>

#include "rectm/cf.hpp"

namespace proteus::rectm {

struct TunerOptions
{
    int trials = 24;
    int folds = 4;
    /** Entries revealed per held-out row during CV. */
    int revealedPerRow = 5;
    std::uint64_t seed = 0x707e;
};

struct TunedCf
{
    std::unique_ptr<CfModel> prototype;
    double cvMape = 0;
    std::string description;
};

/** Run random search + CV; returns the best prototype (untrained). */
TunedCf tuneCf(const UtilityMatrix &ratings, const TunerOptions &options);

/** CV score for a given prototype (exposed for tests/ablation). */
double crossValidateMape(const CfModel &prototype,
                         const UtilityMatrix &ratings, int folds,
                         int revealed_per_row, std::uint64_t seed);

} // namespace proteus::rectm

#endif // PROTEUS_RECTM_CF_TUNER_HPP
