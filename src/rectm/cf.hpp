/**
 * @file
 * Collaborative Filtering predictors (paper §2.2/§5.1): user-based
 * K-Nearest-Neighbors with euclidean/cosine/pearson similarity, and
 * SGD Matrix Factorization with ridge fold-in for new workloads.
 *
 * All predictors operate in *rating space* (after normalization);
 * "users" are workloads and "items" are TM configurations. Training
 * matrices are dense (offline profiling); query rows are sparse.
 */

#ifndef PROTEUS_RECTM_CF_HPP
#define PROTEUS_RECTM_CF_HPP

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "rectm/utility_matrix.hpp"

namespace proteus::rectm {

enum class Similarity : int
{
    kEuclidean = 0,
    kCosine,
    kPearson,
};

std::string_view similarityName(Similarity s);

class CfModel
{
  public:
    virtual ~CfModel() = default;

    /** Train on a rating matrix (rows may be a bootstrap sample). */
    virtual void fit(const UtilityMatrix &ratings) = 0;

    /**
     * Predicted rating of `col` for a query row holding known
     * ratings (NaN elsewhere).
     */
    virtual double predict(const std::vector<double> &query_ratings,
                           std::size_t col) const = 0;

    /**
     * Predicted ratings for *all* columns at once. Semantically
     * equivalent to calling predict per column, but lets models hoist
     * the per-query work (KNN: similarities; MF: the fold-in solve).
     */
    virtual std::vector<double>
    predictAll(const std::vector<double> &query_ratings,
               std::size_t num_cols) const
    {
        std::vector<double> out(num_cols);
        for (std::size_t c = 0; c < num_cols; ++c)
            out[c] = predict(query_ratings, c);
        return out;
    }

    /** Fresh untrained copy with the same hyper-parameters. */
    virtual std::unique_ptr<CfModel> clone() const = 0;

    virtual std::string describe() const = 0;
};

/** User-based KNN. */
class KnnModel : public CfModel
{
  public:
    KnnModel(int k, Similarity similarity)
        : k_(k), similarity_(similarity)
    {}

    void fit(const UtilityMatrix &ratings) override;
    double predict(const std::vector<double> &query_ratings,
                   std::size_t col) const override;
    std::vector<double>
    predictAll(const std::vector<double> &query_ratings,
               std::size_t num_cols) const override;
    std::unique_ptr<CfModel> clone() const override;
    std::string describe() const override;

    /** Similarity between a query row and a training row (exposed for
     *  tests): computed over commonly-known entries. */
    double rowSimilarity(const std::vector<double> &a,
                         const std::vector<double> &b) const;

  private:
    int k_;
    Similarity similarity_;
    UtilityMatrix train_{0, 0};
};

/**
 * Item-based KNN — included to *demonstrate* the paper's footnote 3:
 * it expresses an unknown rating as a weighted average of the ratings
 * the query workload itself already provided, so it can never predict
 * outside the range the workload has witnessed. In a domain where the
 * whole point is finding configurations *better* than the sampled
 * ones, that is disqualifying (see CfTest.ItemBasedKnnCannotExtrapolate).
 */
class ItemKnnModel : public CfModel
{
  public:
    ItemKnnModel(int k, Similarity similarity)
        : k_(k), similarity_(similarity)
    {}

    void fit(const UtilityMatrix &ratings) override;
    double predict(const std::vector<double> &query_ratings,
                   std::size_t col) const override;
    std::unique_ptr<CfModel> clone() const override;
    std::string describe() const override;

  private:
    /** Column-vs-column similarity over the training rows. */
    double colSimilarity(std::size_t a, std::size_t b) const;

    int k_;
    Similarity similarity_;
    UtilityMatrix train_{0, 0};
};

/** Matrix factorization via SGD; query rows fold in by ridge LS. */
class MfModel : public CfModel
{
  public:
    struct Hyper
    {
        int dims = 8;
        int epochs = 60;
        double learnRate = 0.02;
        double regularization = 0.05;
        std::uint64_t seed = 0x5eedF;
    };

    explicit MfModel(Hyper hyper) : hyper_(hyper) {}

    void fit(const UtilityMatrix &ratings) override;
    double predict(const std::vector<double> &query_ratings,
                   std::size_t col) const override;
    std::vector<double>
    predictAll(const std::vector<double> &query_ratings,
               std::size_t num_cols) const override;
    std::unique_ptr<CfModel> clone() const override;
    std::string describe() const override;

  private:
    /** Solve the ridge fold-in for a query row: returns w (d+1). */
    std::vector<double>
    foldIn(const std::vector<double> &query_ratings) const;

    Hyper hyper_;
    double globalMean_ = 0;
    std::vector<double> itemBias_;
    /** cols x dims item factors. */
    std::vector<std::vector<double>> itemFactors_;
};

} // namespace proteus::rectm

#endif // PROTEUS_RECTM_CF_HPP
