/**
 * @file
 * Utility-Matrix preprocessing schemes compared in Fig. 4, including
 * the paper's contribution: *rating distillation* (Algorithm 3).
 *
 * A Normalizer maps a raw goodness matrix into rating space and maps
 * individual values back and forth for query rows. Rating
 * distillation picks the reference column C* that minimizes the index
 * of dispersion var/mean of the per-row maxima after normalizing each
 * row by its value at the candidate column; a new workload is then
 * profiled at C* first, and all its samples are expressed relative to
 * that reference (paper §5.1).
 */

#ifndef PROTEUS_RECTM_NORMALIZER_HPP
#define PROTEUS_RECTM_NORMALIZER_HPP

#include <memory>
#include <string_view>

#include "rectm/utility_matrix.hpp"

namespace proteus::rectm {

/** The Fig. 4 competitors. */
enum class NormalizerKind : int
{
    kNone = 0,      //!< raw KPI (Quasar-style)
    kMaxConstant,   //!< divide by a machine-wide constant (Paragon)
    kIdeal,         //!< oracle: divide each row by its true maximum
    kRcDiff,        //!< row-column mean subtraction (classic CF)
    kDistillation,  //!< ProteusTM's rating distillation
};

std::string_view normalizerName(NormalizerKind kind);

class Normalizer
{
  public:
    virtual ~Normalizer() = default;
    virtual NormalizerKind kind() const = 0;

    /**
     * Fit on the (dense) training matrix and return its rating-space
     * transform.
     */
    virtual UtilityMatrix fitTransform(const UtilityMatrix &train) = 0;

    /**
     * The configuration a new workload must be profiled at first so
     * its samples can be normalized (-1 when any column works).
     */
    virtual int referenceColumn() const { return -1; }

    /**
     * Transform one sampled goodness of a query row into rating
     * space. `row` holds the query's known goodness values (NaN
     * elsewhere); implementations may use it (e.g. to read the
     * reference sample).
     */
    virtual double toRating(const std::vector<double> &row,
                            std::size_t col, double goodness) const = 0;

    /** Invert toRating for a prediction at `col`. */
    virtual double fromRating(const std::vector<double> &row,
                              std::size_t col, double rating) const = 0;

    /**
     * Oracle side-channel used only by the *ideal* scheme: the true
     * row maximum of the current query workload (which a practical
     * system cannot know). No-op for every other normalizer.
     */
    virtual void setOracleRowMax(double /*row_max*/) {}

    /** Factory. */
    static std::unique_ptr<Normalizer> make(NormalizerKind kind);
};

/**
 * Select the distillation reference column: argmin over candidate
 * columns of var/mean of per-row maxima after normalization
 * (Algorithm 3). Exposed for tests and ablations.
 */
int distillationReference(const UtilityMatrix &train);

} // namespace proteus::rectm

#endif // PROTEUS_RECTM_NORMALIZER_HPP
