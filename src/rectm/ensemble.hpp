/**
 * @file
 * Bagging ensemble of CF learners (paper §5.2): each learner trains
 * on a bootstrap sample of the training rows; the ensemble's mean and
 * variance at a configuration provide the Gaussian predictive model
 * pM(c|x) that SMBO's Expected Improvement needs.
 */

#ifndef PROTEUS_RECTM_ENSEMBLE_HPP
#define PROTEUS_RECTM_ENSEMBLE_HPP

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "rectm/cf.hpp"

namespace proteus::rectm {

class BaggingEnsemble
{
  public:
    /**
     * @param prototype  hyper-configured model to clone per bag
     * @param bags       number of learners (paper uses 10)
     */
    BaggingEnsemble(const CfModel &prototype, int bags,
                    std::uint64_t seed = 0xba6d);

    /** Train every bag on a bootstrap row-sample of `ratings`. */
    void fit(const UtilityMatrix &ratings);

    struct Prediction
    {
        double mean = 0;
        double variance = 0;
    };

    /** Gaussian predictive distribution at `col` for a query row. */
    Prediction predict(const std::vector<double> &query_ratings,
                       std::size_t col) const;

    /** Mean-only convenience. */
    double
    predictMean(const std::vector<double> &query_ratings,
                std::size_t col) const
    {
        return predict(query_ratings, col).mean;
    }

    /** Batch predictive distributions for all columns. */
    std::vector<Prediction>
    predictAllConfigs(const std::vector<double> &query_ratings,
                      std::size_t num_cols) const;

    int bags() const { return static_cast<int>(models_.size()); }

  private:
    std::vector<std::unique_ptr<CfModel>> models_;
    std::uint64_t seed_;
};

} // namespace proteus::rectm

#endif // PROTEUS_RECTM_ENSEMBLE_HPP
