/**
 * @file
 * Adaptive CUSUM change detector (paper §5.3, after Basseville &
 * Nikiforov). The Monitor feeds it one KPI sample per period; it
 * tracks the recent mean/deviation with exponentially-weighted
 * estimates and accumulates standardized deviations in two one-sided
 * sums. Crossing the threshold in either direction signals a
 * workload (or environment) behaviour change and triggers
 * re-exploration.
 */

#ifndef PROTEUS_RECTM_CUSUM_HPP
#define PROTEUS_RECTM_CUSUM_HPP

#include <cstddef>

namespace proteus::rectm {

struct CusumOptions
{
    /** EWMA factor for mean/deviation tracking. */
    double alpha = 0.1;
    /** Dead-band (in mean-absolute-deviation units) ignored by the
     *  sums; ~0.8 sigma for Gaussian noise. */
    double slack = 1.0;
    /** Alarm threshold (accumulated deviations); sized for an average
     *  run length of thousands of periods on stationary input. */
    double threshold = 8.0;
    /** Samples consumed before detection arms. */
    int warmup = 5;
};

class CusumDetector
{
  public:
    using Options = CusumOptions;

    explicit CusumDetector(Options options = {});

    /**
     * Feed one sample; returns true when a change is detected. On
     * detection the detector resets (and re-enters warm-up on the new
     * regime).
     */
    bool push(double sample);

    /** Drop all state (used after a deliberate reconfiguration). */
    void reset();

    double mean() const { return mean_; }
    double deviation() const { return dev_; }
    double positiveSum() const { return sumHigh_; }
    double negativeSum() const { return sumLow_; }
    std::size_t samplesSeen() const { return samples_; }

  private:
    Options options_;
    double mean_ = 0;
    double dev_ = 0;
    double sumHigh_ = 0;
    double sumLow_ = 0;
    std::size_t samples_ = 0;
};

} // namespace proteus::rectm

#endif // PROTEUS_RECTM_CUSUM_HPP
