/**
 * @file
 * Sequential Model-Based Optimization controller (paper §5.2).
 *
 * Drives the online profiling of a new workload: starting from the
 * distillation reference configuration, it repeatedly picks the next
 * configuration to *explore* (sample on the live system) using an
 * acquisition policy — Expected Improvement in ProteusTM; Greedy /
 * Variance / Random are the Fig. 5 competitors — until a stopping
 * rule fires. Ratings are maximize-oriented, so EI's closed form is
 * used in its maximization orientation:
 *   EI(x) = sigma * (u * Phi(u) + phi(u)),  u = (mu - best) / sigma.
 */

#ifndef PROTEUS_RECTM_SMBO_HPP
#define PROTEUS_RECTM_SMBO_HPP

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "rectm/ensemble.hpp"
#include "rectm/normalizer.hpp"

namespace proteus::rectm {

enum class ExplorePolicy : int
{
    kEi = 0,   //!< ProteusTM: Expected Improvement
    kGreedy,   //!< highest predictive mean
    kVariance, //!< highest predictive coefficient of variation
    kRandom,   //!< uniform unexplored configuration
};

std::string_view explorePolicyName(ExplorePolicy policy);

enum class StopRule : int
{
    kCautious = 0, //!< ProteusTM's predicate (see below)
    kNaive,        //!< stop as soon as max EI < epsilon * best
    kFixed,        //!< explore a fixed number of configurations
};

std::string_view stopRuleName(StopRule rule);

/** Closed-form Expected Improvement (maximization orientation). */
double expectedImprovement(double mean, double variance, double best);

struct SmboOptions
{
    ExplorePolicy policy = ExplorePolicy::kEi;
    StopRule stop = StopRule::kCautious;
    double epsilon = 0.01;
    int maxExplorations = 20;
    /** Used by StopRule::kFixed. */
    int fixedExplorations = 5;
    std::uint64_t seed = 0x5b0;
};

struct SmboResult
{
    /** Configuration finally recommended (explored, best sampled). */
    std::size_t bestConfig = 0;
    /** Its sampled goodness (KPI-oriented). */
    double bestGoodness = 0;
    /** Number of sampled configurations (excluding the reference). */
    int explorations = 0;
    /** Every configuration sampled, in order (reference first). */
    std::vector<std::size_t> sampled;
    /** The query row (goodness) accumulated during exploration. */
    std::vector<double> queryGoodness;
};

/**
 * One optimization episode for a new workload.
 *
 * @param ensemble    CF ensemble trained in rating space
 * @param normalizer  fitted normalizer (provides the reference column
 *                    and rating-space conversion)
 * @param num_configs configuration-space size
 * @param sample      callback measuring the live goodness of a config
 * @param options     policy/stop knobs
 */
SmboResult optimizeWorkload(
    const BaggingEnsemble &ensemble, const Normalizer &normalizer,
    std::size_t num_configs,
    const std::function<double(std::size_t)> &sample,
    const SmboOptions &options);

} // namespace proteus::rectm

#endif // PROTEUS_RECTM_SMBO_HPP
