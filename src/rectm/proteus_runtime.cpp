#include "rectm/proteus_runtime.hpp"

#include <exception>
#include <thread>

namespace proteus::rectm {

ProteusRuntime::ProteusRuntime(const RecTmEngine &engine,
                               TunableSystem &system,
                               RuntimeOptions options)
    : engine_(engine), system_(system), options_(options),
      detector_(options.cusum)
{
}

std::vector<PeriodRecord>
ProteusRuntime::run(int total_periods,
                    const std::function<void(int)> &before_period)
{
    std::vector<PeriodRecord> records;
    records.reserve(static_cast<std::size_t>(total_periods));

    int period = 0;
    bool need_optimize = true;
    std::size_t current = 0;

    auto tick = [&](std::size_t config, bool exploring,
                    bool change) -> double {
        if (before_period)
            before_period(period);
        system_.applyConfig(config);
        const double kpi = system_.measureKpi();
        PeriodRecord rec;
        rec.period = period;
        rec.config = config;
        rec.kpi = kpi;
        rec.exploring = exploring;
        rec.changeDetected = change;
        records.push_back(rec);
        ++period;
        return kpi;
    };

    while (period < total_periods) {
        if (need_optimize) {
            need_optimize = false;
            ++episodes_;
            const SmboResult result = engine_.optimize(
                [&](std::size_t c) {
                    const double kpi = tick(c, true, false);
                    return toGoodness(kpi, options_.kpi);
                },
                options_.smbo);
            lastExplorations_ = result.explorations;
            current = result.bestConfig;
            detector_.reset();
            continue;
        }
        const double kpi = tick(current, false, false);
        if (detector_.push(kpi) && period < total_periods) {
            need_optimize = true;
            if (!records.empty())
                records.back().changeDetected = true;
        }
    }
    return records;
}

void
RuntimeGroup::add(ProteusRuntime &runtime)
{
    members_.push_back(&runtime);
}

std::vector<std::vector<PeriodRecord>>
RuntimeGroup::runAll(
    int total_periods,
    const std::function<void(std::size_t, int)> &before_period)
{
    std::vector<std::vector<PeriodRecord>> records(members_.size());
    std::vector<std::exception_ptr> errors(members_.size());
    std::vector<std::thread> controllers;
    controllers.reserve(members_.size());
    for (std::size_t i = 0; i < members_.size(); ++i) {
        controllers.emplace_back([this, i, total_periods,
                                  &before_period, &records, &errors] {
            try {
                std::function<void(int)> hook;
                if (before_period)
                    hook = [i, &before_period](int period) {
                        before_period(i, period);
                    };
                records[i] = members_[i]->run(total_periods, hook);
            } catch (...) {
                // A throwing TunableSystem must surface as a
                // catchable error after join, not as std::terminate
                // from a controller thread.
                errors[i] = std::current_exception();
            }
        });
    }
    for (auto &controller : controllers)
        controller.join();
    for (const auto &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
    return records;
}

} // namespace proteus::rectm
