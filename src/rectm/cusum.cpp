#include "rectm/cusum.hpp"

#include <algorithm>
#include <cmath>

namespace proteus::rectm {

CusumDetector::CusumDetector(Options options) : options_(options)
{
}

void
CusumDetector::reset()
{
    mean_ = 0;
    dev_ = 0;
    sumHigh_ = 0;
    sumLow_ = 0;
    samples_ = 0;
}

bool
CusumDetector::push(double sample)
{
    ++samples_;
    if (samples_ == 1) {
        mean_ = sample;
        dev_ = std::abs(sample) * 0.05 + 1e-9;
        return false;
    }

    const double sigma = std::max(dev_, 1e-12);
    const double z = (sample - mean_) / sigma;

    if (samples_ > static_cast<std::size_t>(options_.warmup)) {
        sumHigh_ = std::max(0.0, sumHigh_ + z - options_.slack);
        sumLow_ = std::max(0.0, sumLow_ - z - options_.slack);
        if (sumHigh_ > options_.threshold ||
            sumLow_ > options_.threshold) {
            reset();
            return true;
        }
    }

    // Adapt the reference statistics *after* the test so that slow
    // drifts still accumulate (adaptive CUSUM).
    mean_ += options_.alpha * (sample - mean_);
    dev_ += options_.alpha * (std::abs(sample - mean_) - dev_);
    dev_ = std::max(dev_, 1e-12);
    return false;
}

} // namespace proteus::rectm
