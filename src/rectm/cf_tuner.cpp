#include "rectm/cf_tuner.hpp"

#include <cmath>

namespace proteus::rectm {

double
crossValidateMape(const CfModel &prototype, const UtilityMatrix &ratings,
                  int folds, int revealed_per_row, std::uint64_t seed)
{
    Rng rng(seed);
    const std::size_t rows = ratings.rows();
    const auto perm = rng.permutation(rows);

    double err_sum = 0;
    std::size_t err_n = 0;

    for (int fold = 0; fold < folds; ++fold) {
        // Split rows.
        std::vector<std::vector<double>> train_rows;
        std::vector<std::size_t> test_rows;
        for (std::size_t i = 0; i < rows; ++i) {
            if (static_cast<int>(i % static_cast<std::size_t>(folds)) ==
                fold) {
                test_rows.push_back(perm[i]);
            } else {
                train_rows.push_back(ratings.row(perm[i]));
            }
        }
        if (train_rows.empty() || test_rows.empty())
            continue;

        auto model = prototype.clone();
        model->fit(UtilityMatrix(std::move(train_rows)));

        for (const std::size_t r : test_rows) {
            const auto &full = ratings.row(r);
            const auto known_cols = ratings.knownInRow(r);
            if (known_cols.size() <
                static_cast<std::size_t>(revealed_per_row) + 1)
                continue;
            // Reveal a random subset; hide the rest.
            std::vector<double> query(full.size(), kUnknown);
            auto shuffled = known_cols;
            for (std::size_t i = shuffled.size(); i > 1; --i)
                std::swap(shuffled[i - 1],
                          shuffled[rng.nextBounded(i)]);
            for (int i = 0; i < revealed_per_row; ++i)
                query[shuffled[static_cast<std::size_t>(i)]] =
                    full[shuffled[static_cast<std::size_t>(i)]];

            const auto preds = model->predictAll(query, full.size());
            for (std::size_t i =
                     static_cast<std::size_t>(revealed_per_row);
                 i < shuffled.size(); ++i) {
                const std::size_t c = shuffled[i];
                const double real = full[c];
                if (std::abs(real) < 1e-12)
                    continue;
                err_sum += std::abs(real - preds[c]) / std::abs(real);
                ++err_n;
            }
        }
    }
    return err_n ? err_sum / err_n
                 : std::numeric_limits<double>::infinity();
}

TunedCf
tuneCf(const UtilityMatrix &ratings, const TunerOptions &options)
{
    Rng rng(options.seed);
    TunedCf best;
    best.cvMape = std::numeric_limits<double>::infinity();

    for (int trial = 0; trial < options.trials; ++trial) {
        std::unique_ptr<CfModel> candidate;
        if (rng.bernoulli(0.5)) {
            const int k = 3 + static_cast<int>(rng.nextBounded(28));
            const auto sim =
                static_cast<Similarity>(rng.nextBounded(3));
            candidate = std::make_unique<KnnModel>(k, sim);
        } else {
            MfModel::Hyper hyper;
            hyper.dims = 4 + static_cast<int>(rng.nextBounded(13));
            hyper.epochs = 30 + static_cast<int>(rng.nextBounded(70));
            hyper.learnRate = rng.uniform(0.005, 0.05);
            hyper.regularization = rng.uniform(0.01, 0.2);
            hyper.seed = rng.nextU64();
            candidate = std::make_unique<MfModel>(hyper);
        }
        const double mape = crossValidateMape(
            *candidate, ratings, options.folds, options.revealedPerRow,
            rng.nextU64());
        if (mape < best.cvMape) {
            best.cvMape = mape;
            best.description = candidate->describe();
            best.prototype = std::move(candidate);
        }
    }
    return best;
}

} // namespace proteus::rectm
