/**
 * @file
 * CSV persistence for Utility Matrices.
 *
 * The offline profiling phase (Algorithm 2, step 1) is expensive; a
 * deployment trains once and ships the matrix. Format: one row per
 * workload, comma-separated decimal values, empty cell = unknown.
 * An optional first header line `# cols=N` guards shape mismatches.
 */

#ifndef PROTEUS_RECTM_MATRIX_IO_HPP
#define PROTEUS_RECTM_MATRIX_IO_HPP

#include <iosfwd>
#include <string>

#include "rectm/utility_matrix.hpp"

namespace proteus::rectm {

/** Write a matrix as CSV (with the shape header). */
void saveCsv(const UtilityMatrix &matrix, std::ostream &out);

/**
 * Parse a CSV matrix; throws std::runtime_error on malformed input
 * or on a shape-header mismatch.
 */
UtilityMatrix loadCsv(std::istream &in);

/** Convenience file-path wrappers. */
void saveCsvFile(const UtilityMatrix &matrix, const std::string &path);
UtilityMatrix loadCsvFile(const std::string &path);

} // namespace proteus::rectm

#endif // PROTEUS_RECTM_MATRIX_IO_HPP
