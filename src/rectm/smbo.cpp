#include "rectm/smbo.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace proteus::rectm {

std::string_view
explorePolicyName(ExplorePolicy policy)
{
    switch (policy) {
      case ExplorePolicy::kEi: return "ei";
      case ExplorePolicy::kGreedy: return "greedy";
      case ExplorePolicy::kVariance: return "variance";
      case ExplorePolicy::kRandom: return "random";
    }
    return "invalid";
}

std::string_view
stopRuleName(StopRule rule)
{
    switch (rule) {
      case StopRule::kCautious: return "cautious";
      case StopRule::kNaive: return "naive";
      case StopRule::kFixed: return "fixed";
    }
    return "invalid";
}

namespace {

double
normalPdf(double x)
{
    return std::exp(-0.5 * x * x) / std::sqrt(2.0 * M_PI);
}

double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

} // namespace

double
expectedImprovement(double mean, double variance, double best)
{
    if (variance <= 1e-18)
        return std::max(mean - best, 0.0);
    const double sigma = std::sqrt(variance);
    const double u = (mean - best) / sigma;
    return sigma * (u * normalCdf(u) + normalPdf(u));
}

SmboResult
optimizeWorkload(const BaggingEnsemble &ensemble,
                 const Normalizer &normalizer, std::size_t num_configs,
                 const std::function<double(std::size_t)> &sample,
                 const SmboOptions &options)
{
    Rng rng(options.seed);
    SmboResult result;
    result.queryGoodness.assign(num_configs, kUnknown);
    std::vector<bool> explored(num_configs, false);

    auto sampleConfig = [&](std::size_t c) {
        const double g = sample(c);
        result.queryGoodness[c] = g;
        explored[c] = true;
        result.sampled.push_back(c);
    };

    // Round 0: profile the reference configuration (paper §6.3: "each
    // round profiles the target workload on the reference
    // configuration chosen by the rating distillation function").
    const int ref = normalizer.referenceColumn();
    sampleConfig(ref >= 0 ? static_cast<std::size_t>(ref) : 0);

    auto ratingsRow = [&]() {
        std::vector<double> row = result.queryGoodness;
        std::vector<double> ratings(num_configs, kUnknown);
        for (std::size_t c = 0; c < num_configs; ++c) {
            if (known(row[c]))
                ratings[c] = normalizer.toRating(row, c, row[c]);
        }
        return ratings;
    };

    double prev_ei = std::numeric_limits<double>::infinity();
    double prev_prev_ei = std::numeric_limits<double>::infinity();

    while (result.explorations < options.maxExplorations) {
        const std::vector<double> ratings = ratingsRow();
        double best_rating = 0;
        for (std::size_t c = 0; c < num_configs; ++c) {
            if (known(ratings[c]))
                best_rating = std::max(best_rating, ratings[c]);
        }

        // Score every unexplored configuration.
        const auto preds =
            ensemble.predictAllConfigs(ratings, num_configs);
        int pick = -1;
        double pick_score = -std::numeric_limits<double>::infinity();
        double max_ei = 0;
        std::vector<std::size_t> unexplored;
        for (std::size_t c = 0; c < num_configs; ++c) {
            if (explored[c])
                continue;
            unexplored.push_back(c);
            const auto &pred = preds[c];
            const double ei =
                expectedImprovement(pred.mean, pred.variance, best_rating);
            max_ei = std::max(max_ei, ei);
            double score = 0;
            switch (options.policy) {
              case ExplorePolicy::kEi:
                score = ei;
                break;
              case ExplorePolicy::kGreedy:
                score = pred.mean;
                break;
              case ExplorePolicy::kVariance:
                score = std::sqrt(pred.variance) /
                        std::max(1e-9, std::abs(pred.mean));
                break;
              case ExplorePolicy::kRandom:
                score = 0; // chosen below
                break;
            }
            if (score > pick_score) {
                pick_score = score;
                pick = static_cast<int>(c);
            }
        }
        if (unexplored.empty())
            break;
        if (options.policy == ExplorePolicy::kRandom) {
            pick = static_cast<int>(
                unexplored[rng.nextBounded(unexplored.size())]);
        }

        // ---- stopping rules (checked before spending the sample) ---
        const double rel_ei = max_ei / std::max(best_rating, 1e-12);
        bool stop = false;
        switch (options.stop) {
          case StopRule::kNaive:
            stop = rel_ei < options.epsilon;
            break;
          case StopRule::kCautious: {
            const bool decreasing =
                max_ei < prev_ei && prev_ei < prev_prev_ei;
            const bool marginal = rel_ei < options.epsilon;
            // (iii): the previous exploration's relative improvement.
            bool small_gain = false;
            if (result.explorations >= 1) {
                const std::size_t last =
                    result.sampled.back();
                double best_before = 0;
                for (std::size_t i = 0;
                     i + 1 < result.sampled.size(); ++i) {
                    best_before = std::max(
                        best_before,
                        ratings[result.sampled[i]]);
                }
                const double gain =
                    (ratings[last] - best_before) /
                    std::max(best_before, 1e-12);
                small_gain = gain < options.epsilon;
            }
            stop = decreasing && marginal && small_gain &&
                   result.explorations >= 2;
            break;
          }
          case StopRule::kFixed:
            stop = result.explorations >= options.fixedExplorations;
            break;
        }
        if (stop)
            break;

        prev_prev_ei = prev_ei;
        prev_ei = max_ei;

        sampleConfig(static_cast<std::size_t>(pick));
        ++result.explorations;
    }

    // Final recommendation: ask the model for its favourite; if it was
    // never explored, spend one final sample on it (paper §6.3), then
    // return the best *sampled* configuration.
    {
        const std::vector<double> ratings = ratingsRow();
        const auto preds =
            ensemble.predictAllConfigs(ratings, num_configs);
        int model_best = -1;
        double best_mean = -std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < num_configs; ++c) {
            const double mean =
                explored[c] ? ratings[c] : preds[c].mean;
            if (mean > best_mean) {
                best_mean = mean;
                model_best = static_cast<int>(c);
            }
        }
        if (model_best >= 0 &&
            !explored[static_cast<std::size_t>(model_best)] &&
            result.explorations < options.maxExplorations) {
            sampleConfig(static_cast<std::size_t>(model_best));
            ++result.explorations;
        }
    }

    // Best sampled configuration wins.
    std::size_t best = result.sampled.front();
    for (const std::size_t c : result.sampled) {
        if (result.queryGoodness[c] > result.queryGoodness[best])
            best = c;
    }
    result.bestConfig = best;
    result.bestGoodness = result.queryGoodness[best];
    return result;
}

} // namespace proteus::rectm
