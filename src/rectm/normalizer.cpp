#include "rectm/normalizer.hpp"

#include <algorithm>
#include <cassert>

#include "common/stats.hpp"

namespace proteus::rectm {

std::string_view
normalizerName(NormalizerKind kind)
{
    switch (kind) {
      case NormalizerKind::kNone: return "none";
      case NormalizerKind::kMaxConstant: return "max-const";
      case NormalizerKind::kIdeal: return "ideal";
      case NormalizerKind::kRcDiff: return "rc-diff";
      case NormalizerKind::kDistillation: return "distillation";
    }
    return "invalid";
}

int
distillationReference(const UtilityMatrix &train)
{
    int best_col = -1;
    double best_dispersion = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < train.cols(); ++c) {
        // Candidate must be known in every training row.
        bool usable = true;
        std::vector<double> maxima;
        maxima.reserve(train.rows());
        for (std::size_t r = 0; r < train.rows(); ++r) {
            const double ref = train.at(r, c);
            if (!known(ref) || ref <= 0) {
                usable = false;
                break;
            }
            double row_max = 0;
            for (std::size_t i = 0; i < train.cols(); ++i) {
                const double v = train.at(r, i);
                if (known(v))
                    row_max = std::max(row_max, v / ref);
            }
            maxima.push_back(row_max);
        }
        if (!usable)
            continue;
        const double d = indexOfDispersion(maxima);
        if (d < best_dispersion) {
            best_dispersion = d;
            best_col = static_cast<int>(c);
        }
    }
    return best_col;
}

namespace {

class NoneNormalizer : public Normalizer
{
  public:
    NormalizerKind kind() const override { return NormalizerKind::kNone; }

    UtilityMatrix
    fitTransform(const UtilityMatrix &train) override
    {
        return train;
    }

    double
    toRating(const std::vector<double> &, std::size_t,
             double goodness) const override
    {
        return goodness;
    }

    double
    fromRating(const std::vector<double> &, std::size_t,
               double rating) const override
    {
        return rating;
    }
};

class MaxConstantNormalizer : public Normalizer
{
  public:
    NormalizerKind
    kind() const override
    {
        return NormalizerKind::kMaxConstant;
    }

    UtilityMatrix
    fitTransform(const UtilityMatrix &train) override
    {
        peak_ = 0;
        for (std::size_t r = 0; r < train.rows(); ++r) {
            for (std::size_t c = 0; c < train.cols(); ++c) {
                if (known(train.at(r, c)))
                    peak_ = std::max(peak_, train.at(r, c));
            }
        }
        if (peak_ <= 0)
            peak_ = 1;
        UtilityMatrix out = train;
        for (std::size_t r = 0; r < out.rows(); ++r) {
            for (std::size_t c = 0; c < out.cols(); ++c) {
                if (known(out.at(r, c)))
                    out.set(r, c, out.at(r, c) / peak_);
            }
        }
        return out;
    }

    double
    toRating(const std::vector<double> &, std::size_t,
             double goodness) const override
    {
        return goodness / peak_;
    }

    double
    fromRating(const std::vector<double> &, std::size_t,
               double rating) const override
    {
        return rating * peak_;
    }

  private:
    double peak_ = 1;
};

class IdealNormalizer : public Normalizer
{
  public:
    NormalizerKind kind() const override { return NormalizerKind::kIdeal; }

    UtilityMatrix
    fitTransform(const UtilityMatrix &train) override
    {
        UtilityMatrix out = train;
        for (std::size_t r = 0; r < out.rows(); ++r) {
            double row_max = 0;
            for (std::size_t c = 0; c < out.cols(); ++c) {
                if (known(out.at(r, c)))
                    row_max = std::max(row_max, out.at(r, c));
            }
            if (row_max <= 0)
                continue;
            for (std::size_t c = 0; c < out.cols(); ++c) {
                if (known(out.at(r, c)))
                    out.set(r, c, out.at(r, c) / row_max);
            }
        }
        return out;
    }

    void
    setOracleRowMax(double row_max) override
    {
        oracleMax_ = row_max > 0 ? row_max : 1.0;
    }

    double
    toRating(const std::vector<double> &, std::size_t,
             double goodness) const override
    {
        return goodness / oracleMax_;
    }

    double
    fromRating(const std::vector<double> &, std::size_t,
               double rating) const override
    {
        return rating * oracleMax_;
    }

  private:
    double oracleMax_ = 1.0;
};

class RcDiffNormalizer : public Normalizer
{
  public:
    NormalizerKind kind() const override { return NormalizerKind::kRcDiff; }

    UtilityMatrix
    fitTransform(const UtilityMatrix &train) override
    {
        UtilityMatrix out = train;
        // Subtract per-row means.
        for (std::size_t r = 0; r < out.rows(); ++r) {
            double sum = 0;
            std::size_t n = 0;
            for (std::size_t c = 0; c < out.cols(); ++c) {
                if (known(out.at(r, c))) {
                    sum += out.at(r, c);
                    ++n;
                }
            }
            const double row_mean = n ? sum / n : 0.0;
            for (std::size_t c = 0; c < out.cols(); ++c) {
                if (known(out.at(r, c)))
                    out.set(r, c, out.at(r, c) - row_mean);
            }
        }
        // Then subtract per-column means of the residuals.
        colAdj_.assign(out.cols(), 0.0);
        for (std::size_t c = 0; c < out.cols(); ++c) {
            double sum = 0;
            std::size_t n = 0;
            for (std::size_t r = 0; r < out.rows(); ++r) {
                if (known(out.at(r, c))) {
                    sum += out.at(r, c);
                    ++n;
                }
            }
            colAdj_[c] = n ? sum / n : 0.0;
            for (std::size_t r = 0; r < out.rows(); ++r) {
                if (known(out.at(r, c)))
                    out.set(r, c, out.at(r, c) - colAdj_[c]);
            }
        }
        return out;
    }

    double
    toRating(const std::vector<double> &row, std::size_t col,
             double goodness) const override
    {
        return goodness - queryRowMean(row) - colAdj_[col];
    }

    double
    fromRating(const std::vector<double> &row, std::size_t col,
               double rating) const override
    {
        return rating + queryRowMean(row) + colAdj_[col];
    }

  private:
    static double
    queryRowMean(const std::vector<double> &row)
    {
        double sum = 0;
        std::size_t n = 0;
        for (const double v : row) {
            if (known(v)) {
                sum += v;
                ++n;
            }
        }
        return n ? sum / n : 0.0;
    }

    std::vector<double> colAdj_;
};

class DistillationNormalizer : public Normalizer
{
  public:
    NormalizerKind
    kind() const override
    {
        return NormalizerKind::kDistillation;
    }

    UtilityMatrix
    fitTransform(const UtilityMatrix &train) override
    {
        reference_ = distillationReference(train);
        assert(reference_ >= 0 && "training matrix needs a dense column");
        UtilityMatrix out = train;
        for (std::size_t r = 0; r < out.rows(); ++r) {
            const double ref =
                out.at(r, static_cast<std::size_t>(reference_));
            if (!known(ref) || ref <= 0)
                continue;
            for (std::size_t c = 0; c < out.cols(); ++c) {
                if (known(out.at(r, c)))
                    out.set(r, c, out.at(r, c) / ref);
            }
        }
        // Per-column mean rating of the training population: used to
        // re-anchor query rows that were not profiled at C*.
        colMeanRating_.assign(out.cols(), 1.0);
        for (std::size_t c = 0; c < out.cols(); ++c) {
            double sum = 0;
            std::size_t n = 0;
            for (std::size_t r = 0; r < out.rows(); ++r) {
                if (known(out.at(r, c))) {
                    sum += out.at(r, c);
                    ++n;
                }
            }
            if (n && sum > 0)
                colMeanRating_[c] = sum / n;
        }
        return out;
    }

    int referenceColumn() const override { return reference_; }

    double
    toRating(const std::vector<double> &row, std::size_t,
             double goodness) const override
    {
        return goodness / refSample(row);
    }

    double
    fromRating(const std::vector<double> &row, std::size_t,
               double rating) const override
    {
        return rating * refSample(row);
    }

  private:
    double
    refSample(const std::vector<double> &row) const
    {
        const double ref = row[static_cast<std::size_t>(reference_)];
        // The normal workflow profiles the reference configuration
        // first (§5.2's first round)...
        if (known(ref) && ref > 0)
            return ref;
        // ...but the Fig. 4 protocol does not force its presence:
        // estimate the row's value at C* from the samples we do have,
        // using the training population's mean rating per column as
        // the alignment prior: r[C*] ~ mean_c( r[c] / E[rating_c] ).
        double est = 0;
        std::size_t n = 0;
        for (std::size_t c = 0;
             c < row.size() && c < colMeanRating_.size(); ++c) {
            if (known(row[c]) && row[c] > 0) {
                est += row[c] / colMeanRating_[c];
                ++n;
            }
        }
        return n ? est / n : 1.0;
    }

    int reference_ = -1;
    std::vector<double> colMeanRating_;
};

} // namespace

std::unique_ptr<Normalizer>
Normalizer::make(NormalizerKind kind)
{
    switch (kind) {
      case NormalizerKind::kNone:
        return std::make_unique<NoneNormalizer>();
      case NormalizerKind::kMaxConstant:
        return std::make_unique<MaxConstantNormalizer>();
      case NormalizerKind::kIdeal:
        return std::make_unique<IdealNormalizer>();
      case NormalizerKind::kRcDiff:
        return std::make_unique<RcDiffNormalizer>();
      case NormalizerKind::kDistillation:
        return std::make_unique<DistillationNormalizer>();
    }
    return nullptr;
}

} // namespace proteus::rectm
