/**
 * @file
 * ProteusRuntime: the closed loop of the whole system (paper §6.4).
 *
 * Couples a RecTmEngine (Recommender + Controller) with a Monitor
 * (CUSUM change detection) and a TunableSystem (the live PolyTM
 * application, or its simulated stand-in). On start — and whenever
 * the Monitor flags a behaviour change — the runtime runs one SMBO
 * exploration episode and settles on the recommended configuration.
 */

#ifndef PROTEUS_RECTM_PROTEUS_RUNTIME_HPP
#define PROTEUS_RECTM_PROTEUS_RUNTIME_HPP

#include <functional>
#include <vector>

#include "polytm/kpi.hpp"
#include "rectm/cusum.hpp"
#include "rectm/engine.hpp"

namespace proteus::rectm {

/** What the runtime tunes: apply a configuration, measure the KPI. */
class TunableSystem
{
  public:
    virtual ~TunableSystem() = default;

    virtual std::size_t numConfigs() const = 0;

    /** Switch the system to configuration `c`. */
    virtual void applyConfig(std::size_t c) = 0;

    /** Run one monitor period and return the raw KPI observed. */
    virtual double measureKpi() = 0;
};

struct RuntimeOptions
{
    polytm::KpiKind kpi = polytm::KpiKind::kThroughput;
    SmboOptions smbo{};
    CusumDetector::Options cusum{};
};

/** One monitor period as recorded by the runtime. */
struct PeriodRecord
{
    int period = 0;
    std::size_t config = 0;
    double kpi = 0;
    bool exploring = false;
    bool changeDetected = false;
};

class ProteusRuntime
{
  public:
    ProteusRuntime(const RecTmEngine &engine, TunableSystem &system,
                   RuntimeOptions options);

    /**
     * Drive `total_periods` monitor periods; `before_period(t)` lets
     * the caller shift the workload/environment (Fig. 8/9 phases).
     */
    std::vector<PeriodRecord>
    run(int total_periods,
        const std::function<void(int)> &before_period = nullptr);

    /** Number of SMBO episodes executed (1 + detected changes). */
    int episodes() const { return episodes_; }
    /** Explorations spent in the most recent episode. */
    int lastEpisodeExplorations() const { return lastExplorations_; }

  private:
    const RecTmEngine &engine_;
    TunableSystem &system_;
    RuntimeOptions options_;
    CusumDetector detector_;
    int episodes_ = 0;
    int lastExplorations_ = 0;
};

/**
 * Drives several ProteusRuntime instances concurrently, one controller
 * thread per runtime — the wiring a sharded service needs when every
 * shard is its own independently-tuned TunableSystem (ProteusKV).
 *
 * The runtimes may share one RecTmEngine: optimize() is const and
 * keeps all episode state on the caller's stack. Each runtime must
 * wrap a distinct TunableSystem; nothing synchronizes applyConfig
 * across members.
 */
class RuntimeGroup
{
  public:
    /** Non-owning; `runtime` must outlive runAll(). */
    void add(ProteusRuntime &runtime);

    std::size_t size() const { return members_.size(); }

    /**
     * Run every member for `total_periods` periods in parallel and
     * block until all finish. `before_period(member, period)` is
     * invoked from that member's controller thread; it must be
     * thread-safe across members.
     */
    std::vector<std::vector<PeriodRecord>>
    runAll(int total_periods,
           const std::function<void(std::size_t, int)> &before_period =
               nullptr);

    /** Episodes executed by member `i` during the last runAll(). */
    int episodes(std::size_t i) const { return members_[i]->episodes(); }

  private:
    std::vector<ProteusRuntime *> members_;
};

} // namespace proteus::rectm

#endif // PROTEUS_RECTM_PROTEUS_RUNTIME_HPP
