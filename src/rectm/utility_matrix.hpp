/**
 * @file
 * The Utility Matrix (paper §5.1): rows are workloads, columns are TM
 * configurations, entries are *goodness* ratings — KPI values
 * oriented so that larger is always better (minimization KPIs are
 * inverted on ingestion). Missing entries are NaN.
 */

#ifndef PROTEUS_RECTM_UTILITY_MATRIX_HPP
#define PROTEUS_RECTM_UTILITY_MATRIX_HPP

#include <cmath>
#include <limits>
#include <vector>

#include "polytm/kpi.hpp"

namespace proteus::rectm {

/** Missing-entry marker. */
inline constexpr double kUnknown = std::numeric_limits<double>::quiet_NaN();

inline bool
known(double v)
{
    return !std::isnan(v);
}

/** Convert a raw KPI sample into a maximize-oriented goodness. */
inline double
toGoodness(double kpi, polytm::KpiKind kind)
{
    return polytm::kpiIsMaximize(kind) ? kpi : 1.0 / kpi;
}

/** Invert toGoodness (for reporting predictions in KPI units). */
inline double
fromGoodness(double goodness, polytm::KpiKind kind)
{
    return polytm::kpiIsMaximize(kind) ? goodness : 1.0 / goodness;
}

class UtilityMatrix
{
  public:
    UtilityMatrix(std::size_t rows, std::size_t cols)
        : cols_(cols), data_(rows, std::vector<double>(cols, kUnknown))
    {}

    explicit UtilityMatrix(std::vector<std::vector<double>> rows)
        : cols_(rows.empty() ? 0 : rows.front().size()),
          data_(std::move(rows))
    {}

    std::size_t rows() const { return data_.size(); }
    std::size_t cols() const { return cols_; }

    double at(std::size_t r, std::size_t c) const { return data_[r][c]; }
    void set(std::size_t r, std::size_t c, double v) { data_[r][c] = v; }

    const std::vector<double> &row(std::size_t r) const { return data_[r]; }
    std::vector<double> &rowMutable(std::size_t r) { return data_[r]; }

    /** Indices of known entries in a row. */
    std::vector<std::size_t>
    knownInRow(std::size_t r) const
    {
        std::vector<std::size_t> out;
        for (std::size_t c = 0; c < cols_; ++c) {
            if (known(data_[r][c]))
                out.push_back(c);
        }
        return out;
    }

    /** Fraction of known entries. */
    double
    density() const
    {
        std::size_t n = 0;
        for (const auto &row : data_) {
            for (const double v : row)
                n += known(v) ? 1 : 0;
        }
        return rows() == 0
            ? 0.0
            : static_cast<double>(n) / (rows() * cols_);
    }

    /** Best (max-goodness) known column of a row, or -1. */
    int
    bestInRow(std::size_t r) const
    {
        int best = -1;
        for (std::size_t c = 0; c < cols_; ++c) {
            if (!known(data_[r][c]))
                continue;
            if (best < 0 || data_[r][c] > data_[r][best])
                best = static_cast<int>(c);
        }
        return best;
    }

  private:
    std::size_t cols_;
    std::vector<std::vector<double>> data_;
};

} // namespace proteus::rectm

#endif // PROTEUS_RECTM_UTILITY_MATRIX_HPP
