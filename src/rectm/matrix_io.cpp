#include "rectm/matrix_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace proteus::rectm {

void
saveCsv(const UtilityMatrix &matrix, std::ostream &out)
{
    out << "# cols=" << matrix.cols() << "\n";
    out << std::setprecision(17);
    for (std::size_t r = 0; r < matrix.rows(); ++r) {
        for (std::size_t c = 0; c < matrix.cols(); ++c) {
            if (c)
                out << ',';
            if (known(matrix.at(r, c)))
                out << matrix.at(r, c);
        }
        out << '\n';
    }
}

UtilityMatrix
loadCsv(std::istream &in)
{
    std::string line;
    std::size_t expected_cols = 0;
    std::vector<std::vector<double>> rows;

    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (line.front() == '#') {
            const auto pos = line.find("cols=");
            if (pos != std::string::npos)
                expected_cols = std::stoul(line.substr(pos + 5));
            continue;
        }
        std::vector<double> row;
        std::stringstream ss(line);
        std::string cell;
        while (std::getline(ss, cell, ','))
            row.push_back(cell.empty() ? kUnknown : std::stod(cell));
        // A line ending in ',' has a trailing empty (unknown) cell.
        if (!line.empty() && line.back() == ',')
            row.push_back(kUnknown);
        if (expected_cols && row.size() != expected_cols) {
            throw std::runtime_error(
                "UtilityMatrix CSV: row has " +
                std::to_string(row.size()) + " cells, header says " +
                std::to_string(expected_cols));
        }
        if (!rows.empty() && row.size() != rows.front().size()) {
            throw std::runtime_error(
                "UtilityMatrix CSV: ragged rows");
        }
        rows.push_back(std::move(row));
    }
    return UtilityMatrix(std::move(rows));
}

void
saveCsvFile(const UtilityMatrix &matrix, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot open for write: " + path);
    saveCsv(matrix, out);
}

UtilityMatrix
loadCsvFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open for read: " + path);
    return loadCsv(in);
}

} // namespace proteus::rectm
