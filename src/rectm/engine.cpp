#include "rectm/engine.hpp"

namespace proteus::rectm {

RecTmEngine::RecTmEngine(const UtilityMatrix &training_goodness,
                         Options options)
    : numConfigs_(training_goodness.cols())
{
    normalizer_ = Normalizer::make(options.normalizer);
    const UtilityMatrix ratings =
        normalizer_->fitTransform(training_goodness);

    TunerOptions tuner = options.tuner;
    tuner.seed ^= options.seed;
    TunedCf tuned = tuneCf(ratings, tuner);
    modelDesc_ = tuned.description;
    cvMape_ = tuned.cvMape;

    ensemble_ = std::make_unique<BaggingEnsemble>(
        *tuned.prototype, options.bags, options.seed ^ 0xbead);
    ensemble_->fit(ratings);
}

std::vector<double>
RecTmEngine::predictAllGoodness(
    const std::vector<double> &query_goodness) const
{
    std::vector<double> ratings(numConfigs_, kUnknown);
    for (std::size_t c = 0; c < numConfigs_; ++c) {
        if (known(query_goodness[c])) {
            ratings[c] = normalizer_->toRating(query_goodness, c,
                                               query_goodness[c]);
        }
    }
    const auto preds =
        ensemble_->predictAllConfigs(ratings, numConfigs_);
    std::vector<double> out(numConfigs_);
    for (std::size_t c = 0; c < numConfigs_; ++c) {
        out[c] = normalizer_->fromRating(query_goodness, c,
                                         preds[c].mean);
    }
    return out;
}

} // namespace proteus::rectm
