#include "rectm/cf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace proteus::rectm {

std::string_view
similarityName(Similarity s)
{
    switch (s) {
      case Similarity::kEuclidean: return "euclidean";
      case Similarity::kCosine: return "cosine";
      case Similarity::kPearson: return "pearson";
    }
    return "invalid";
}

// ---- KnnModel ------------------------------------------------------------

void
KnnModel::fit(const UtilityMatrix &ratings)
{
    train_ = ratings;
}

double
KnnModel::rowSimilarity(const std::vector<double> &a,
                        const std::vector<double> &b) const
{
    double dot = 0, na = 0, nb = 0, dist2 = 0;
    double sum_a = 0, sum_b = 0;
    std::size_t n = 0;
    const std::size_t len = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < len; ++i) {
        if (!known(a[i]) || !known(b[i]))
            continue;
        ++n;
        sum_a += a[i];
        sum_b += b[i];
    }
    if (n == 0)
        return 0.0;
    const double mean_a = sum_a / n;
    const double mean_b = sum_b / n;
    const bool centered = similarity_ == Similarity::kPearson;
    for (std::size_t i = 0; i < len; ++i) {
        if (!known(a[i]) || !known(b[i]))
            continue;
        const double x = centered ? a[i] - mean_a : a[i];
        const double y = centered ? b[i] - mean_b : b[i];
        dot += x * y;
        na += x * x;
        nb += y * y;
        dist2 += (a[i] - b[i]) * (a[i] - b[i]);
    }
    switch (similarity_) {
      case Similarity::kEuclidean:
        return 1.0 / (1.0 + std::sqrt(dist2 / n));
      case Similarity::kCosine:
      case Similarity::kPearson: {
        const double denom = std::sqrt(na) * std::sqrt(nb);
        if (denom <= 1e-12)
            return 0.0;
        return dot / denom;
      }
    }
    return 0.0;
}

namespace {

struct ScoredRow
{
    double sim;
    std::size_t row;
    double mean;
};

} // namespace

std::vector<double>
KnnModel::predictAll(const std::vector<double> &query,
                     std::size_t num_cols) const
{
    // Hoist similarity + row-mean computation out of the per-column
    // aggregation (training rows are shared across columns).
    std::vector<ScoredRow> scored;
    scored.reserve(train_.rows());
    for (std::size_t r = 0; r < train_.rows(); ++r) {
        const double sim = rowSimilarity(query, train_.row(r));
        if (sim <= 0)
            continue;
        double sum = 0;
        std::size_t n = 0;
        for (const double v : train_.row(r)) {
            if (known(v)) {
                sum += v;
                ++n;
            }
        }
        scored.push_back({sim, r, n ? sum / n : 0.0});
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto &a, const auto &b) { return a.sim > b.sim; });

    // Column means as the no-neighbor fallback.
    std::vector<double> col_mean(num_cols, 0.0);
    std::vector<std::size_t> col_n(num_cols, 0);
    for (std::size_t r = 0; r < train_.rows(); ++r) {
        for (std::size_t c = 0; c < num_cols && c < train_.cols(); ++c) {
            if (known(train_.at(r, c))) {
                col_mean[c] += train_.at(r, c);
                ++col_n[c];
            }
        }
    }
    for (std::size_t c = 0; c < num_cols; ++c)
        col_mean[c] = col_n[c] ? col_mean[c] / col_n[c] : 0.0;

    double qmean = 0;
    if (similarity_ == Similarity::kPearson) {
        double qsum = 0;
        std::size_t qn = 0;
        for (const double v : query) {
            if (known(v)) {
                qsum += v;
                ++qn;
            }
        }
        qmean = qn ? qsum / qn : 0.0;
    }

    std::vector<double> out(num_cols);
    for (std::size_t c = 0; c < num_cols; ++c) {
        double num = 0, den = 0;
        std::size_t used = 0;
        for (const ScoredRow &s : scored) {
            if (used >= static_cast<std::size_t>(k_))
                break;
            const double rating = train_.at(s.row, c);
            if (!known(rating))
                continue;
            ++used;
            if (similarity_ == Similarity::kPearson) {
                num += s.sim * (rating - s.mean);
                den += std::abs(s.sim);
            } else {
                num += s.sim * rating;
                den += s.sim;
            }
        }
        if (used == 0 || den <= 1e-12) {
            out[c] = similarity_ == Similarity::kPearson
                ? qmean
                : col_mean[c];
        } else if (similarity_ == Similarity::kPearson) {
            out[c] = qmean + num / den;
        } else {
            out[c] = num / den;
        }
    }
    return out;
}

double
KnnModel::predict(const std::vector<double> &query, std::size_t col) const
{
    return predictAll(query, train_.cols())[col];
}

std::unique_ptr<CfModel>
KnnModel::clone() const
{
    return std::make_unique<KnnModel>(k_, similarity_);
}

std::string
KnnModel::describe() const
{
    return "knn(k=" + std::to_string(k_) + "," +
           std::string(similarityName(similarity_)) + ")";
}

// ---- ItemKnnModel ----------------------------------------------------------

void
ItemKnnModel::fit(const UtilityMatrix &ratings)
{
    train_ = ratings;
}

double
ItemKnnModel::colSimilarity(std::size_t a, std::size_t b) const
{
    std::vector<double> col_a, col_b;
    col_a.reserve(train_.rows());
    col_b.reserve(train_.rows());
    for (std::size_t r = 0; r < train_.rows(); ++r) {
        col_a.push_back(train_.at(r, a));
        col_b.push_back(train_.at(r, b));
    }
    // Reuse the row-similarity math by treating columns as vectors.
    KnnModel helper(1, similarity_);
    return helper.rowSimilarity(col_a, col_b);
}

double
ItemKnnModel::predict(const std::vector<double> &query,
                      std::size_t col) const
{
    // Weighted average of the *query's own* ratings on the most
    // similar items (configurations) — the defining property (and
    // flaw, here) of item-based KNN.
    struct Scored
    {
        double sim;
        double rating;
    };
    std::vector<Scored> scored;
    for (std::size_t c = 0; c < query.size() && c < train_.cols();
         ++c) {
        if (c == col || !known(query[c]))
            continue;
        const double sim = colSimilarity(col, c);
        if (sim > 0)
            scored.push_back({sim, query[c]});
    }
    if (scored.empty()) {
        double sum = 0;
        std::size_t n = 0;
        for (const double v : query) {
            if (known(v)) {
                sum += v;
                ++n;
            }
        }
        return n ? sum / n : 0.0;
    }
    std::sort(scored.begin(), scored.end(),
              [](const Scored &a, const Scored &b) {
                  return a.sim > b.sim;
              });
    const std::size_t k = std::min<std::size_t>(
        static_cast<std::size_t>(k_), scored.size());
    double num = 0, den = 0;
    for (std::size_t i = 0; i < k; ++i) {
        num += scored[i].sim * scored[i].rating;
        den += scored[i].sim;
    }
    return den > 1e-12 ? num / den : scored.front().rating;
}

std::unique_ptr<CfModel>
ItemKnnModel::clone() const
{
    return std::make_unique<ItemKnnModel>(k_, similarity_);
}

std::string
ItemKnnModel::describe() const
{
    return "item-knn(k=" + std::to_string(k_) + "," +
           std::string(similarityName(similarity_)) + ")";
}

// ---- MfModel --------------------------------------------------------------

void
MfModel::fit(const UtilityMatrix &ratings)
{
    const std::size_t rows = ratings.rows();
    const std::size_t cols = ratings.cols();
    const int d = hyper_.dims;
    Rng rng(hyper_.seed);

    double sum = 0;
    std::size_t n = 0;
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            if (known(ratings.at(r, c))) {
                sum += ratings.at(r, c);
                ++n;
            }
        }
    }
    globalMean_ = n ? sum / n : 0.0;

    std::vector<std::vector<double>> user(rows, std::vector<double>(d));
    itemFactors_.assign(cols, std::vector<double>(d));
    itemBias_.assign(cols, 0.0);
    std::vector<double> user_bias(rows, 0.0);
    const double scale = 0.1 / std::sqrt(d);
    for (auto &row : user) {
        for (auto &v : row)
            v = rng.gaussian(0, scale);
    }
    for (auto &row : itemFactors_) {
        for (auto &v : row)
            v = rng.gaussian(0, scale);
    }

    std::vector<std::pair<std::uint32_t, std::uint32_t>> samples;
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            if (known(ratings.at(r, c)))
                samples.emplace_back(static_cast<std::uint32_t>(r),
                                     static_cast<std::uint32_t>(c));
        }
    }
    const double lr = hyper_.learnRate;
    const double reg = hyper_.regularization;
    for (int epoch = 0; epoch < hyper_.epochs; ++epoch) {
        for (std::size_t i = samples.size(); i > 1; --i)
            std::swap(samples[i - 1], samples[rng.nextBounded(i)]);
        for (const auto &[r, c] : samples) {
            auto &p = user[r];
            auto &q = itemFactors_[c];
            double pred = globalMean_ + user_bias[r] + itemBias_[c];
            for (int f = 0; f < d; ++f)
                pred += p[f] * q[f];
            const double err = ratings.at(r, c) - pred;
            user_bias[r] += lr * (err - reg * user_bias[r]);
            itemBias_[c] += lr * (err - reg * itemBias_[c]);
            for (int f = 0; f < d; ++f) {
                const double pf = p[f];
                p[f] += lr * (err * q[f] - reg * pf);
                q[f] += lr * (err * pf - reg * q[f]);
            }
        }
    }
}

std::vector<double>
MfModel::foldIn(const std::vector<double> &query) const
{
    const int d = hyper_.dims;
    const int dim = d + 1; // + user-bias feature
    std::vector<double> ata(static_cast<std::size_t>(dim) * dim, 0.0);
    std::vector<double> aty(dim, 0.0);
    std::size_t n = 0;
    for (std::size_t c = 0;
         c < query.size() && c < itemFactors_.size(); ++c) {
        if (!known(query[c]))
            continue;
        ++n;
        const double y = query[c] - globalMean_ - itemBias_[c];
        std::vector<double> x(dim, 1.0);
        for (int f = 0; f < d; ++f)
            x[f] = itemFactors_[c][f];
        for (int i = 0; i < dim; ++i) {
            aty[i] += x[i] * y;
            for (int j = 0; j < dim; ++j)
                ata[static_cast<std::size_t>(i) * dim + j] += x[i] * x[j];
        }
    }
    std::vector<double> w(dim, 0.0);
    if (n == 0)
        return w;

    const double reg = std::max(hyper_.regularization, 1e-4);
    for (int i = 0; i < dim; ++i)
        ata[static_cast<std::size_t>(i) * dim + i] += reg * n;

    // Gaussian elimination with partial pivoting.
    for (int i = 0; i < dim; ++i) {
        int pivot = i;
        for (int r = i + 1; r < dim; ++r) {
            if (std::abs(ata[static_cast<std::size_t>(r) * dim + i]) >
                std::abs(ata[static_cast<std::size_t>(pivot) * dim + i]))
                pivot = r;
        }
        for (int c = 0; c < dim; ++c)
            std::swap(ata[static_cast<std::size_t>(i) * dim + c],
                      ata[static_cast<std::size_t>(pivot) * dim + c]);
        std::swap(aty[i], aty[pivot]);
        const double diag = ata[static_cast<std::size_t>(i) * dim + i];
        if (std::abs(diag) < 1e-12)
            continue;
        for (int r = i + 1; r < dim; ++r) {
            const double factor =
                ata[static_cast<std::size_t>(r) * dim + i] / diag;
            for (int c = i; c < dim; ++c)
                ata[static_cast<std::size_t>(r) * dim + c] -=
                    factor * ata[static_cast<std::size_t>(i) * dim + c];
            aty[r] -= factor * aty[i];
        }
    }
    for (int i = dim - 1; i >= 0; --i) {
        double acc = aty[i];
        for (int c = i + 1; c < dim; ++c)
            acc -= ata[static_cast<std::size_t>(i) * dim + c] * w[c];
        const double diag = ata[static_cast<std::size_t>(i) * dim + i];
        w[i] = std::abs(diag) > 1e-12 ? acc / diag : 0.0;
    }
    return w;
}

std::vector<double>
MfModel::predictAll(const std::vector<double> &query,
                    std::size_t num_cols) const
{
    const int d = hyper_.dims;
    const std::vector<double> w = foldIn(query);
    std::vector<double> out(num_cols);
    for (std::size_t c = 0; c < num_cols && c < itemFactors_.size();
         ++c) {
        double pred = globalMean_ + itemBias_[c] + w[d];
        for (int f = 0; f < d; ++f)
            pred += w[f] * itemFactors_[c][f];
        out[c] = pred;
    }
    return out;
}

double
MfModel::predict(const std::vector<double> &query, std::size_t col) const
{
    return predictAll(query, itemFactors_.size())[col];
}

std::unique_ptr<CfModel>
MfModel::clone() const
{
    return std::make_unique<MfModel>(hyper_);
}

std::string
MfModel::describe() const
{
    return "mf(d=" + std::to_string(hyper_.dims) +
           ",epochs=" + std::to_string(hyper_.epochs) + ")";
}

} // namespace proteus::rectm
