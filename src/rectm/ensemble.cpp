#include "rectm/ensemble.hpp"

namespace proteus::rectm {

BaggingEnsemble::BaggingEnsemble(const CfModel &prototype, int bags,
                                 std::uint64_t seed)
    : seed_(seed)
{
    models_.reserve(static_cast<std::size_t>(bags));
    for (int i = 0; i < bags; ++i)
        models_.push_back(prototype.clone());
}

void
BaggingEnsemble::fit(const UtilityMatrix &ratings)
{
    Rng rng(seed_);
    for (auto &model : models_) {
        // Bootstrap sample of rows (with replacement).
        std::vector<std::vector<double>> sample;
        sample.reserve(ratings.rows());
        for (std::size_t i = 0; i < ratings.rows(); ++i) {
            const std::size_t r = rng.nextBounded(ratings.rows());
            sample.push_back(ratings.row(r));
        }
        model->fit(UtilityMatrix(std::move(sample)));
    }
}

std::vector<BaggingEnsemble::Prediction>
BaggingEnsemble::predictAllConfigs(const std::vector<double> &query,
                                   std::size_t num_cols) const
{
    std::vector<Prediction> out(num_cols);
    std::vector<std::vector<double>> per_model;
    per_model.reserve(models_.size());
    for (const auto &model : models_)
        per_model.push_back(model->predictAll(query, num_cols));
    for (std::size_t c = 0; c < num_cols; ++c) {
        double sum = 0;
        for (const auto &preds : per_model)
            sum += preds[c];
        const double mean = sum / per_model.size();
        double var = 0;
        for (const auto &preds : per_model)
            var += (preds[c] - mean) * (preds[c] - mean);
        out[c].mean = mean;
        out[c].variance =
            per_model.size() > 1 ? var / per_model.size() : 0.0;
    }
    return out;
}

BaggingEnsemble::Prediction
BaggingEnsemble::predict(const std::vector<double> &query,
                         std::size_t col) const
{
    Prediction out;
    std::vector<double> preds;
    preds.reserve(models_.size());
    for (const auto &model : models_)
        preds.push_back(model->predict(query, col));
    double sum = 0;
    for (const double p : preds)
        sum += p;
    out.mean = sum / preds.size();
    double var = 0;
    for (const double p : preds)
        var += (p - out.mean) * (p - out.mean);
    out.variance = preds.size() > 1 ? var / preds.size() : 0.0;
    return out;
}

} // namespace proteus::rectm
