#include "polytm/kpi.hpp"

namespace proteus::polytm {

std::string_view
kpiName(KpiKind kind)
{
    switch (kind) {
      case KpiKind::kThroughput: return "throughput";
      case KpiKind::kExecTime: return "exec-time";
      case KpiKind::kEdp: return "edp";
    }
    return "invalid";
}

} // namespace proteus::polytm
