#include "polytm/kpi.hpp"

#include "common/timing.hpp"
#include "polytm/polytm.hpp"

namespace proteus::polytm {

std::string_view
kpiName(KpiKind kind)
{
    switch (kind) {
      case KpiKind::kThroughput: return "throughput";
      case KpiKind::kExecTime: return "exec-time";
      case KpiKind::kEdp: return "edp";
    }
    return "invalid";
}

KpiMeter::KpiMeter(const PolyTm &poly) : poly_(&poly)
{
    reset();
}

void
KpiMeter::reset()
{
    const PolyStats stats = poly_->snapshotStats();
    lastCommits_ = stats.commits;
    lastAborts_ = stats.aborts;
    lastNanos_ = nowNanos();
}

KpiSample
KpiMeter::sample()
{
    const PolyStats stats = poly_->snapshotStats();
    const std::uint64_t now = nowNanos();

    KpiSample out;
    out.seconds = static_cast<double>(now - lastNanos_) * 1e-9;
    const double commits =
        static_cast<double>(stats.commits - lastCommits_);
    const double aborts = static_cast<double>(stats.aborts - lastAborts_);
    if (out.seconds > 0) {
        out.commitsPerSec = commits / out.seconds;
        out.abortsPerSec = aborts / out.seconds;
    }
    if (commits + aborts > 0)
        out.abortRatio = aborts / (commits + aborts);

    lastCommits_ = stats.commits;
    lastAborts_ = stats.aborts;
    lastNanos_ = now;
    return out;
}

} // namespace proteus::polytm
