#include "polytm/thread_gate.hpp"

#include <cassert>
#include <stdexcept>
#include <string>
#include <thread>

namespace proteus::polytm {

void
ThreadGate::checkTid(int tid)
{
    if (tid < 0 || tid >= tm::kMaxThreads) {
        throw std::out_of_range(
            "ThreadGate: tid " + std::to_string(tid) +
            " outside [0, " + std::to_string(tm::kMaxThreads) +
            ") - too many worker threads registered (tm::kMaxThreads)");
    }
}

void
ThreadGate::enter(int tid)
{
    checkTid(tid);
    Slot &slot = slots_[tid];
    for (;;) {
        // Fast path: one fetch-and-add on a thread-private line.
        const std::uint64_t val =
            slot.state->fetch_add(kRun, std::memory_order_acq_rel);
        if ((val & kBlockMask) == 0)
            return;
        // We raced with (or arrived after) a disable: undo and park.
        slot.state->fetch_sub(kRun, std::memory_order_acq_rel);
        std::unique_lock<std::mutex> lk(slot.mutex);
        slot.cv.wait(lk, [&] {
            return (slot.state->load(std::memory_order_acquire) &
                    kBlockMask) == 0;
        });
    }
}

bool
ThreadGate::tryEnter(int tid)
{
    checkTid(tid);
    Slot &slot = slots_[tid];
    const std::uint64_t val =
        slot.state->fetch_add(kRun, std::memory_order_acq_rel);
    if ((val & kBlockMask) == 0)
        return true;
    slot.state->fetch_sub(kRun, std::memory_order_acq_rel);
    return false;
}

void
ThreadGate::exit(int tid)
{
    checkTid(tid);
    slots_[tid].state->fetch_sub(kRun, std::memory_order_acq_rel);
}

void
ThreadGate::block(int tid)
{
    checkTid(tid);
    Slot &slot = slots_[tid];
    std::uint64_t val =
        slot.state->fetch_add(kBlock, std::memory_order_acq_rel);
    // Wait out an in-flight transaction (paper: "because t was already
    // executing a transaction"). Spin briefly, then yield every
    // iteration: on oversubscribed hosts the waited-on thread only
    // finishes its transaction if it gets the CPU.
    unsigned spins = 0;
    while (val & (kBlock - 1)) {
        if (++spins > 16)
            std::this_thread::yield();
#if defined(__x86_64__)
        __builtin_ia32_pause();
#endif
        val = slot.state->load(std::memory_order_acquire);
    }
}

void
ThreadGate::unblock(int tid)
{
    checkTid(tid);
    Slot &slot = slots_[tid];
    {
        std::lock_guard<std::mutex> lk(slot.mutex);
        const std::uint64_t prev =
            slot.state->fetch_sub(kBlock, std::memory_order_acq_rel);
        assert(prev & kBlockMask);
        (void)prev;
    }
    slot.cv.notify_all();
}

bool
ThreadGate::blocked(int tid) const
{
    checkTid(tid);
    return (slots_[tid].state->load(std::memory_order_acquire) &
            kBlockMask) != 0;
}

std::uint64_t
ThreadGate::rawState(int tid) const
{
    checkTid(tid);
    return slots_[tid].state->load(std::memory_order_acquire);
}

} // namespace proteus::polytm
