/**
 * @file
 * ThreadGate: the synchronization scheme of the paper's Algorithm 1.
 *
 * Each registered thread owns a padded state word. An application
 * thread entering a transaction does one uncontended fetch-and-add on
 * its own (cached) word — the cheap common case the paper measures at
 * ~17 cycles. The adapter thread blocks a thread by adding BLOCK and
 * spinning until the RUN bit clears; a blocked thread parks on a
 * per-thread condition variable.
 *
 * Deviation from the paper's pseudo-code: enable() *subtracts* BLOCK
 * instead of overwriting the state with RUN. The overwrite is only
 * safe if the enabled thread is guaranteed to be parked; the
 * subtraction is safe unconditionally and keeps the fetch-and-add
 * fast path identical.
 */

#ifndef PROTEUS_POLYTM_THREAD_GATE_HPP
#define PROTEUS_POLYTM_THREAD_GATE_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/cacheline.hpp"
#include "tm/tm_api.hpp"

namespace proteus::polytm {

class ThreadGate
{
  public:
    /**
     * Announce intent to run a transaction; blocks (parking on the
     * thread's condvar) while the thread is disabled.
     *
     * Every entry point validates `tid` against tm::kMaxThreads and
     * throws std::out_of_range on violation: a driver spawning more
     * workers than the gate has slots must fail loudly, not scribble
     * past the slot array.
     */
    void enter(int tid);

    /**
     * Non-parking enter: acquires the RUN bit like enter(), but if the
     * thread is disabled, undoes it and returns false instead of
     * parking — for callers that hold external resources (ProteusKV's
     * shard latches) which must never be held by a parked thread.
     */
    bool tryEnter(int tid);

    /** Transaction attempt finished (commit or abort). */
    void exit(int tid);

    /**
     * Adapter side: disable a thread and wait until it is not inside
     * a transaction. Nestable (BLOCK is a counter at bit 32).
     */
    void block(int tid);

    /** Adapter side: drop one disable; wakes the thread if parked. */
    void unblock(int tid);

    /** Whether the thread currently has a BLOCK pending. */
    bool blocked(int tid) const;

    /** Raw state word (tests / stats). */
    std::uint64_t rawState(int tid) const;

  private:
    /** Throws std::out_of_range unless 0 <= tid < tm::kMaxThreads. */
    static void checkTid(int tid);

    static constexpr std::uint64_t kRun = 1;
    static constexpr std::uint64_t kBlock = std::uint64_t{1} << 32;
    static constexpr std::uint64_t kBlockMask = ~(kBlock - 1);

    struct Slot
    {
        Padded<std::atomic<std::uint64_t>> state{};
        std::mutex mutex;
        std::condition_variable cv;
    };

    Slot slots_[tm::kMaxThreads];
};

} // namespace proteus::polytm

#endif // PROTEUS_POLYTM_THREAD_GATE_HPP
