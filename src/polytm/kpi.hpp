/**
 * @file
 * Key Performance Indicators and the synthetic power model.
 *
 * The paper optimizes three KPIs: throughput (maximize), execution
 * time (minimize) and EDP — Energy Delay Product (minimize). Energy on
 * this testbed comes from a linear power model (DESIGN.md §2: RAPL
 * substitution): P = static + perThread * activeThreads.
 */

#ifndef PROTEUS_POLYTM_KPI_HPP
#define PROTEUS_POLYTM_KPI_HPP

#include <cstdint>
#include <string_view>

namespace proteus::polytm {

class PolyTm;

/** Which KPI an optimization run targets. */
enum class KpiKind : int
{
    kThroughput = 0, //!< transactions per second (maximize)
    kExecTime,       //!< seconds for a fixed batch of work (minimize)
    kEdp,            //!< energy x delay, J*s (minimize)
};

/** Whether larger KPI values are better. */
inline bool
kpiIsMaximize(KpiKind kind)
{
    return kind == KpiKind::kThroughput;
}

std::string_view kpiName(KpiKind kind);

/**
 * Linear chip power model standing in for RAPL.
 *
 * Defaults roughly shaped on a desktop Haswell: ~12 W uncore/static
 * plus ~6 W per busy hardware thread.
 */
struct PowerModel
{
    double staticWatts = 12.0;
    double perThreadWatts = 6.0;

    double
    watts(int active_threads) const
    {
        return staticWatts + perThreadWatts * active_threads;
    }

    double
    energyJoules(double seconds, int active_threads) const
    {
        return watts(active_threads) * seconds;
    }

    /** EDP for a run of `seconds` with `active_threads` busy. */
    double
    edp(double seconds, int active_threads) const
    {
        return energyJoules(seconds, active_threads) * seconds;
    }
};

/** One live KPI observation window over a PolyTm instance. */
struct KpiSample
{
    double seconds = 0;       //!< window length
    double commitsPerSec = 0; //!< committed transactions / second
    double abortsPerSec = 0;
    double abortRatio = 0;    //!< aborts / (commits + aborts), 0 if idle
};

/**
 * Per-instance KPI probe: differences successive PolyTm::snapshotStats
 * against the monotonic clock, so each Monitor period reads the live
 * commit rate of exactly one PolyTm (one shard, in ProteusKV) without
 * any global registry. Not thread-safe; each controller owns its own
 * meter.
 */
class KpiMeter
{
  public:
    explicit KpiMeter(const PolyTm &poly);

    /** Restart the window (e.g. right after a reconfiguration). */
    void reset();

    /** Close the current window, start the next one. */
    KpiSample sample();

  private:
    const PolyTm *poly_;
    std::uint64_t lastCommits_ = 0;
    std::uint64_t lastAborts_ = 0;
    std::uint64_t lastNanos_ = 0;
};

} // namespace proteus::polytm

#endif // PROTEUS_POLYTM_KPI_HPP
