/**
 * @file
 * Key Performance Indicators and the synthetic power model.
 *
 * The paper optimizes three KPIs: throughput (maximize), execution
 * time (minimize) and EDP — Energy Delay Product (minimize). Energy on
 * this testbed comes from a linear power model (DESIGN.md §2: RAPL
 * substitution): P = static + perThread * activeThreads.
 */

#ifndef PROTEUS_POLYTM_KPI_HPP
#define PROTEUS_POLYTM_KPI_HPP

#include <string_view>

namespace proteus::polytm {

/** Which KPI an optimization run targets. */
enum class KpiKind : int
{
    kThroughput = 0, //!< transactions per second (maximize)
    kExecTime,       //!< seconds for a fixed batch of work (minimize)
    kEdp,            //!< energy x delay, J*s (minimize)
};

/** Whether larger KPI values are better. */
inline bool
kpiIsMaximize(KpiKind kind)
{
    return kind == KpiKind::kThroughput;
}

std::string_view kpiName(KpiKind kind);

/**
 * Linear chip power model standing in for RAPL.
 *
 * Defaults roughly shaped on a desktop Haswell: ~12 W uncore/static
 * plus ~6 W per busy hardware thread.
 */
struct PowerModel
{
    double staticWatts = 12.0;
    double perThreadWatts = 6.0;

    double
    watts(int active_threads) const
    {
        return staticWatts + perThreadWatts * active_threads;
    }

    double
    energyJoules(double seconds, int active_threads) const
    {
        return watts(active_threads) * seconds;
    }

    /** EDP for a run of `seconds` with `active_threads` busy. */
    double
    edp(double seconds, int active_threads) const
    {
        return energyJoules(seconds, active_threads) * seconds;
    }
};

} // namespace proteus::polytm

#endif // PROTEUS_POLYTM_KPI_HPP
