#include "polytm/config.hpp"

#include <array>

namespace proteus::polytm {

std::string
TmConfig::label() const
{
    std::string out{tm::backendName(backend)};
    out += ":" + std::to_string(threads) + "t";
    if (usesHtmKnobs()) {
        out += ":B" + std::to_string(cm.htmBudget);
        out += ":";
        out += tm::capacityPolicyName(cm.capacityPolicy);
    }
    return out;
}

ConfigSpace
ConfigSpace::machineA()
{
    using tm::BackendKind;
    using tm::CapacityPolicy;

    std::vector<TmConfig> configs;
    const std::array<BackendKind, 4> stms = {
        BackendKind::kTl2, BackendKind::kTinyStm,
        BackendKind::kNorec, BackendKind::kSwissTm};

    for (const BackendKind stm : stms) {
        for (int t = 1; t <= 8; ++t)
            configs.push_back({stm, t, {}});
    }

    // 12 (budget, policy) pairs, mirroring Table 3's budgets
    // {1,2,4,8,16,20} with the three capacity policies.
    const std::array<std::pair<int, CapacityPolicy>, 12> htm_knobs = {{
        {1, CapacityPolicy::kGiveUp}, {2, CapacityPolicy::kGiveUp},
        {4, CapacityPolicy::kGiveUp}, {8, CapacityPolicy::kGiveUp},
        {16, CapacityPolicy::kGiveUp}, {20, CapacityPolicy::kGiveUp},
        {2, CapacityPolicy::kDecrease}, {4, CapacityPolicy::kDecrease},
        {8, CapacityPolicy::kDecrease}, {16, CapacityPolicy::kDecrease},
        {4, CapacityPolicy::kHalve}, {8, CapacityPolicy::kHalve},
    }};
    for (int t = 1; t <= 8; ++t) {
        for (const auto &[budget, policy] : htm_knobs) {
            TmConfig c{BackendKind::kSimHtm, t, {}};
            c.cm.htmBudget = budget;
            c.cm.capacityPolicy = policy;
            configs.push_back(c);
        }
    }

    configs.push_back({BackendKind::kGlobalLock, 1, {}});
    TmConfig hybrid{BackendKind::kHybridNorec, 8, {}};
    hybrid.cm.htmBudget = 5;
    configs.push_back(hybrid);

    return ConfigSpace(std::move(configs)); // 32 + 96 + 2 = 130
}

ConfigSpace
ConfigSpace::machineB()
{
    using tm::BackendKind;

    std::vector<TmConfig> configs;
    const std::array<BackendKind, 4> stms = {
        BackendKind::kTl2, BackendKind::kTinyStm,
        BackendKind::kNorec, BackendKind::kSwissTm};
    const std::array<int, 8> threads = {1, 2, 4, 6, 8, 16, 32, 48};

    for (const BackendKind stm : stms) {
        for (const int t : threads)
            configs.push_back({stm, t, {}});
    }
    return ConfigSpace(std::move(configs)); // 32
}

int
ConfigSpace::indexOf(const TmConfig &c) const
{
    for (std::size_t i = 0; i < configs_.size(); ++i) {
        if (configs_[i] == c)
            return static_cast<int>(i);
    }
    return -1;
}

} // namespace proteus::polytm
