/**
 * @file
 * PolyTM: the polymorphic TM runtime (paper §4).
 *
 * PolyTM hides every TM backend behind one dispatch point, profiles
 * commits/aborts, and supports run-time reconfiguration of
 *  (i) the TM algorithm (quiesced switch via ThreadGate),
 *  (ii) the parallelism degree (selective thread disabling),
 *  (iii) the HTM contention-management knobs (no quiescence needed).
 *
 * Public API sketch:
 * @code
 *   PolyTm poly;
 *   auto token = poly.registerThread();
 *   TxField<int> x;
 *   poly.run(token, [&](Tx &tx) { tx.write(x, tx.read(x) + 1); });
 *   poly.reconfigure({tm::BackendKind::kNorec, 4, {}});
 * @endcode
 */

#ifndef PROTEUS_POLYTM_POLYTM_HPP
#define PROTEUS_POLYTM_POLYTM_HPP

#include <array>
#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "common/cacheline.hpp"
#include "common/epoch.hpp"
#include "polytm/config.hpp"
#include "polytm/thread_gate.hpp"
#include "tm/backend.hpp"
#include "tm/sim_htm.hpp"

namespace proteus::polytm {

class PolyTm;

/**
 * A transactional cell holding any trivially-copyable T of at most
 * 8 bytes (word-based TM). Fields must only be accessed through a Tx
 * inside a transaction, or through raw accessors while no transaction
 * can run (setup/teardown).
 */
template <typename T>
class TxField
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "TxField requires trivially copyable payloads");
    static_assert(sizeof(T) <= 8, "TxField payloads are word-sized");

  public:
    TxField() = default;
    explicit TxField(T v) { rawSet(v); }

    /** Non-transactional accessors: only while quiesced. */
    T
    rawGet() const
    {
        T out;
        std::memcpy(&out, &storage_, sizeof(T));
        return out;
    }

    void
    rawSet(T v)
    {
        storage_ = 0;
        std::memcpy(&storage_, &v, sizeof(T));
    }

  private:
    friend class Tx;
    alignas(8) std::uint64_t storage_ = 0;
};

/** Handle passed to the transaction body; wraps backend + descriptor. */
class Tx
{
  public:
    template <typename T>
    T
    read(const TxField<T> &field)
    {
        const std::uint64_t word = backend_->txRead(*desc_, &field.storage_);
        T out;
        std::memcpy(&out, &word, sizeof(T));
        return out;
    }

    template <typename T>
    void
    write(TxField<T> &field, T value)
    {
        std::uint64_t word = 0;
        std::memcpy(&word, &value, sizeof(T));
        backend_->txWrite(*desc_, &field.storage_, word);
    }

    /** Raw word access (data structures managing their own layout). */
    std::uint64_t
    readWord(const std::uint64_t *addr)
    {
        return backend_->txRead(*desc_, addr);
    }

    void
    writeWord(std::uint64_t *addr, std::uint64_t value)
    {
        backend_->txWrite(*desc_, addr, value);
    }

    /**
     * Whether the current attempt can still abort (retry() is legal).
     * False in irrevocable modes — the emulated HTM's fallback-lock
     * holder — where callers that would wait-by-retrying must instead
     * wait in place (the KV store's intent resolution does exactly
     * that). The global-lock backend undo-logs its in-place writes
     * and is revocable.
     */
    bool revocable() const { return backend_->revocable(*desc_); }

    /** Explicit user abort + retry (illegal in irrevocable modes). */
    [[noreturn]] void
    retry()
    {
        if (!backend_->revocable(*desc_))
            throw std::logic_error("retry() inside irrevocable tx");
        backend_->abortTx(*desc_, tm::AbortCause::kExplicit);
    }

    tm::TxDesc &desc() { return *desc_; }

  private:
    friend class PolyTm;
    Tx(tm::TmBackend &backend, tm::TxDesc &desc)
        : backend_(&backend), desc_(&desc)
    {}

    tm::TmBackend *backend_;
    tm::TxDesc *desc_;
};

/** Per-thread registration handle. */
struct ThreadToken
{
    int tid = -1;
    tm::TxDesc *desc = nullptr;
    /**
     * Reader-epoch slot for quiescent-state-based reclamation
     * (common/epoch.hpp). PolyTM itself never touches it; the layer
     * that owns both the PolyTM instance and an EpochDomain (the KV
     * shard) assigns the thread's slot here at registration so read
     * paths can pin resources through the token they already carry.
     */
    EpochSlot *epochSlot = nullptr;
};

/** Aggregated profiling counters. */
struct PolyStats
{
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::array<std::uint64_t, 6> abortsByCause{};
};

class PolyTm
{
  public:
    /**
     * @param initial      configuration active at construction
     * @param htm_config   emulated-HTM capacity parameters
     * @param log2_orecs   stripe-table size used by all backends
     */
    explicit PolyTm(TmConfig initial = {},
                    tm::SimHtmConfig htm_config = {},
                    unsigned log2_orecs = 18);
    ~PolyTm();

    PolyTm(const PolyTm &) = delete;
    PolyTm &operator=(const PolyTm &) = delete;

    /** Register the calling thread; assigns the next dense tid. */
    ThreadToken registerThread();

    /** Deregister; the token becomes invalid. */
    void deregisterThread(ThreadToken &token);

    /**
     * Execute `body` as one atomic transaction, retrying on aborts
     * with bounded randomized backoff. The body may run many times;
     * it must be side-effect free apart from transactional accesses.
     */
    template <typename F>
    void
    run(ThreadToken &token, F &&body)
    {
        (void)runImpl<true>(token, body);
    }

    /**
     * Like run(), but never parks: if this thread is disabled by the
     * parallelism degree (at entry or between retry attempts),
     * returns false with nothing committed. For callers holding
     * external resources (latches) that a parked thread must not
     * keep; pair with waitRunnable() — release the resource, wait,
     * retry. Returns true after `body` committed.
     */
    template <typename F>
    bool
    tryRun(ThreadToken &token, F &&body)
    {
        return runImpl<false>(token, body);
    }

    /**
     * Park until this thread is admitted by the current parallelism
     * degree (no transaction is run). The admission can be revoked by
     * a concurrent reconfigure at any time after return; callers use
     * this only to avoid busy-spinning around tryRun().
     */
    void
    waitRunnable(ThreadToken &token)
    {
        gate_.enter(token.tid);
        gate_.exit(token.tid);
    }

    /**
     * Apply a new configuration (adapter-thread side). CM-only changes
     * are applied without quiescence; backend/thread changes run the
     * paper's 3-step protocol (parallelism to 0, switch, restore).
     */
    void reconfigure(const TmConfig &config);

    TmConfig currentConfig() const;

    /**
     * Forbid PolyTM from disabling this thread when shrinking the
     * parallelism degree (paper §4.2's programmer escape hatch); it
     * may still be paused briefly while switching algorithms.
     */
    void setPinned(int tid, bool pinned);

    /**
     * Re-enable every registered thread, regardless of the configured
     * parallelism degree. Called by workloads after raising their stop
     * flag so that disabled threads can observe it and exit.
     */
    void resumeAllForShutdown();

    /** Aggregate counters across all threads since construction. */
    PolyStats snapshotStats() const;

    /** Wall time of the most recent quiesced reconfiguration. */
    std::uint64_t lastReconfigureNanos() const
    {
        return lastReconfigureNanos_.load(std::memory_order_relaxed);
    }

    /** Number of currently registered threads. */
    int registeredThreads() const;

    /** Direct backend access (tests and micro-benchmarks only). */
    tm::TmBackend &backendFor(tm::BackendKind kind);

  private:
    /**
     * Shared retry loop behind run()/tryRun(): gate admission (parking
     * when kBlocking, refusal otherwise), budget reload, begin / body /
     * commit, profiling, abort handling with backoff. Returns true
     * once the body committed; false only when !kBlocking and the
     * gate refused admission (nothing committed).
     */
    template <bool kBlocking, typename F>
    bool
    runImpl(ThreadToken &token, F &&body)
    {
        tm::TxDesc &desc = *token.desc;
        desc.consecutiveAborts = 0;
        for (;;) {
            if constexpr (kBlocking) {
                gate_.enter(token.tid);
            } else {
                if (!gate_.tryEnter(token.tid))
                    return false;
            }
            tm::TmBackend *backend =
                currentBackend_.load(std::memory_order_acquire);
            if (desc.consecutiveAborts == 0) {
                desc.htmBudgetLeft =
                    cmBudget_.load(std::memory_order_relaxed);
            }
            try {
                backend->txBegin(desc);
                Tx tx(*backend, desc);
                body(tx);
                backend->txCommit(desc);
                counters_[token.tid]->commits.fetch_add(
                    1, std::memory_order_relaxed);
                desc.consecutiveAborts = 0;
                gate_.exit(token.tid);
                return true;
            } catch (const tm::TxAbort &abort) {
                onAbort(token, desc, *backend, abort);
                gate_.exit(token.tid);
                tm::backoffOnAbort(desc);
            } catch (...) {
                // Foreign exception out of the body (e.g. bad_alloc):
                // roll the open transaction back so its locks release,
                // drop the RUN bit — a leaked RUN would make the next
                // reconfigure() spin forever — and let it propagate.
                try {
                    backend->abortTx(desc, tm::AbortCause::kExplicit);
                } catch (const tm::TxAbort &) {
                }
                gate_.exit(token.tid);
                throw;
            }
        }
    }

    struct ThreadCounters
    {
        std::atomic<std::uint64_t> commits{0};
        std::atomic<std::uint64_t> aborts{0};
        std::array<std::atomic<std::uint64_t>, 6> abortsByCause{};
    };

    void onAbort(ThreadToken &token, tm::TxDesc &desc,
                 tm::TmBackend &backend, const tm::TxAbort &abort);

    /** True if `tid` should be runnable under `config`. */
    bool enabledUnder(const TmConfig &config, int tid) const;

    ThreadGate gate_;
    std::atomic<tm::TmBackend *> currentBackend_{nullptr};

    std::atomic<int> cmBudget_{5};
    std::atomic<int> cmPolicy_{
        static_cast<int>(tm::CapacityPolicy::kDecrease)};

    mutable std::mutex adminMutex_;
    TmConfig config_;
    std::array<std::unique_ptr<tm::TmBackend>,
               static_cast<std::size_t>(tm::BackendKind::kNumBackends)>
        backends_;
    /**
     * Descriptors are created on first registration of a tid and then
     * live until the PolyTm dies; `registered_` tracks occupancy. A
     * departed thread's descriptor stays mapped because the emulated
     * HTM's doomAllActive may race a deregistration through a slot
     * pointer it loaded moments earlier — a doomed-flag write into a
     * parked descriptor is harmless, one into freed memory is not.
     */
    std::array<std::unique_ptr<tm::TxDesc>, tm::kMaxThreads> descs_;
    std::array<bool, tm::kMaxThreads> registered_{};
    std::array<bool, tm::kMaxThreads> enabled_{};
    std::array<bool, tm::kMaxThreads> pinned_{};
    std::array<std::unique_ptr<ThreadCounters>, tm::kMaxThreads> counters_;
    int numRegistered_ = 0;

    std::atomic<std::uint64_t> lastReconfigureNanos_{0};
};

} // namespace proteus::polytm

#endif // PROTEUS_POLYTM_POLYTM_HPP
