/**
 * @file
 * TM configurations and the enumerated configuration spaces.
 *
 * A TmConfig is one column of the paper's Utility Matrix: the TM
 * algorithm, the parallelism degree, and (for HTM) the retry budget
 * and the capacity-abort policy (Table 3). ConfigSpace enumerates the
 * spaces used throughout the evaluation: 130 configurations for
 * Machine A (STMs + HTM dimensions) and 32 for Machine B (STMs only).
 */

#ifndef PROTEUS_POLYTM_CONFIG_HPP
#define PROTEUS_POLYTM_CONFIG_HPP

#include <string>
#include <vector>

#include "tm/tm_api.hpp"

namespace proteus::polytm {

/** One point of the multi-dimensional tuning space. */
struct TmConfig
{
    tm::BackendKind backend = tm::BackendKind::kTl2;
    int threads = 1;
    tm::ContentionConfig cm{};

    bool
    operator==(const TmConfig &other) const
    {
        const bool base = backend == other.backend &&
                          threads == other.threads;
        if (!usesHtmKnobs())
            return base;
        return base && cm.htmBudget == other.cm.htmBudget &&
               cm.capacityPolicy == other.cm.capacityPolicy;
    }

    /** HTM knobs only matter for HTM-bearing backends. */
    bool
    usesHtmKnobs() const
    {
        return backend == tm::BackendKind::kSimHtm ||
               backend == tm::BackendKind::kHybridNorec;
    }

    /** Compact label, e.g. "tiny:4t" or "htm:8t:B4:halve". */
    std::string label() const;
};

/**
 * The enumerated configuration space of one machine; provides the
 * column ordering shared by the Utility Matrix, the performance model
 * and the benches.
 */
class ConfigSpace
{
  public:
    explicit ConfigSpace(std::vector<TmConfig> configs)
        : configs_(std::move(configs))
    {}

    /**
     * Machine A space (single-socket 8-thread CPU with HTM):
     * 4 STMs x 8 thread counts, HTM x 8 threads x 12 (budget, policy)
     * pairs, global lock, and hybrid at 8 threads = 130 configurations
     * (matching the paper's count).
     */
    static ConfigSpace machineA();

    /** Machine B space (4-socket 48-core, no HTM): 4 STMs x 8 thread
     *  counts = 32 configurations. */
    static ConfigSpace machineB();

    std::size_t size() const { return configs_.size(); }
    const TmConfig &at(std::size_t i) const { return configs_[i]; }
    const std::vector<TmConfig> &all() const { return configs_; }

    /** Index of a config equal to `c`, or -1. */
    int indexOf(const TmConfig &c) const;

  private:
    std::vector<TmConfig> configs_;
};

} // namespace proteus::polytm

#endif // PROTEUS_POLYTM_CONFIG_HPP
