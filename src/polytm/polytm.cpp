#include "polytm/polytm.hpp"

#include <cassert>

#include "common/timing.hpp"
#include "tm/global_lock.hpp"
#include "tm/hybrid_norec.hpp"
#include "tm/norec.hpp"
#include "tm/swisstm.hpp"
#include "tm/tinystm.hpp"
#include "tm/tl2.hpp"

namespace proteus::polytm {

using tm::BackendKind;

PolyTm::PolyTm(TmConfig initial, tm::SimHtmConfig htm_config,
               unsigned log2_orecs)
{
    auto idx = [](BackendKind k) { return static_cast<std::size_t>(k); };
    backends_[idx(BackendKind::kGlobalLock)] =
        std::make_unique<tm::GlobalLockTm>();
    backends_[idx(BackendKind::kTl2)] =
        std::make_unique<tm::Tl2Tm>(log2_orecs);
    backends_[idx(BackendKind::kTinyStm)] =
        std::make_unique<tm::TinyStmTm>(log2_orecs);
    backends_[idx(BackendKind::kNorec)] = std::make_unique<tm::NorecTm>();
    backends_[idx(BackendKind::kSwissTm)] =
        std::make_unique<tm::SwissTm>(log2_orecs);
    backends_[idx(BackendKind::kSimHtm)] =
        std::make_unique<tm::SimHtm>(htm_config, log2_orecs);
    backends_[idx(BackendKind::kHybridNorec)] =
        std::make_unique<tm::HybridNorecTm>(htm_config, log2_orecs);

    config_ = initial;
    currentBackend_.store(backends_[idx(initial.backend)].get(),
                          std::memory_order_release);
    cmBudget_.store(initial.cm.htmBudget, std::memory_order_relaxed);
    cmPolicy_.store(static_cast<int>(initial.cm.capacityPolicy),
                    std::memory_order_relaxed);
}

PolyTm::~PolyTm() = default;

ThreadToken
PolyTm::registerThread()
{
    std::lock_guard<std::mutex> lk(adminMutex_);
    int tid = -1;
    for (int t = 0; t < tm::kMaxThreads; ++t) {
        if (!registered_[t]) {
            tid = t;
            break;
        }
    }
    if (tid < 0)
        throw std::runtime_error("PolyTm: too many registered threads");

    // Descriptors are never freed before the PolyTm itself dies (see
    // deregisterThread); a departed tid's descriptor is recycled for
    // its next owner with the per-attempt state wiped.
    if (!descs_[tid]) {
        descs_[tid] = std::make_unique<tm::TxDesc>(
            tid, 0x5eed0000ull + static_cast<std::uint64_t>(tid));
    } else {
        descs_[tid]->beginAttempt();
        descs_[tid]->consecutiveAborts = 0;
        descs_[tid]->htmBudgetLeft = 0;
        descs_[tid]->lastAbortCause = tm::AbortCause::kNone;
    }
    registered_[tid] = true;
    // Counters survive tid reuse so snapshotStats() stays cumulative
    // across departed threads.
    if (!counters_[tid])
        counters_[tid] = std::make_unique<ThreadCounters>();
    for (auto &backend : backends_)
        backend->registerThread(*descs_[tid]);
    ++numRegistered_;

    // Threads beyond the configured parallelism degree start disabled.
    enabled_[tid] = enabledUnder(config_, tid);
    if (!enabled_[tid])
        gate_.block(tid);

    return ThreadToken{tid, descs_[tid].get()};
}

void
PolyTm::deregisterThread(ThreadToken &token)
{
    std::lock_guard<std::mutex> lk(adminMutex_);
    assert(token.tid >= 0 && registered_[token.tid]);
    if (!enabled_[token.tid])
        gate_.unblock(token.tid);
    enabled_[token.tid] = false;
    // A pin is per-thread state, not per-slot: it must not leak to an
    // unrelated thread that later reuses this tid.
    pinned_[token.tid] = false;
    for (auto &backend : backends_)
        backend->deregisterThread(*descs_[token.tid]);
    // counters_[tid] intentionally survives: snapshotStats() keeps
    // aggregating work done by departed threads. The descriptor
    // survives too: a racing SimHtm fallback begin may still doom
    // "all active" threads through a slot pointer it loaded just
    // before this deregistration — a write into a parked (or
    // recycled) descriptor's doomed flag is harmless, a write into a
    // freed one is a use-after-free.
    registered_[token.tid] = false;
    --numRegistered_;
    token.tid = -1;
    token.desc = nullptr;
}

bool
PolyTm::enabledUnder(const TmConfig &config, int tid) const
{
    return pinned_[tid] || tid < config.threads;
}

void
PolyTm::onAbort(ThreadToken &token, tm::TxDesc &desc,
                tm::TmBackend &backend, const tm::TxAbort &abort)
{
    desc.lastAbortCause = abort.cause;
    ++desc.consecutiveAborts;
    counters_[token.tid]->aborts.fetch_add(1, std::memory_order_relaxed);
    counters_[token.tid]
        ->abortsByCause[static_cast<std::size_t>(abort.cause)]
        .fetch_add(1, std::memory_order_relaxed);

    // HTM retry-budget policy (paper §4.3): consumed per abort; the
    // capacity policy decides how harshly capacity aborts count.
    const BackendKind kind = backend.kind();
    if (kind == BackendKind::kSimHtm || kind == BackendKind::kHybridNorec) {
        if (abort.cause == tm::AbortCause::kCapacity) {
            switch (static_cast<tm::CapacityPolicy>(
                cmPolicy_.load(std::memory_order_relaxed))) {
              case tm::CapacityPolicy::kGiveUp:
                desc.htmBudgetLeft = 0;
                break;
              case tm::CapacityPolicy::kDecrease:
                --desc.htmBudgetLeft;
                break;
              case tm::CapacityPolicy::kHalve:
                desc.htmBudgetLeft /= 2;
                break;
              default:
                break;
            }
        } else {
            --desc.htmBudgetLeft;
        }
        if (desc.htmBudgetLeft < 0)
            desc.htmBudgetLeft = 0;
    }
}

void
PolyTm::reconfigure(const TmConfig &config)
{
    std::lock_guard<std::mutex> lk(adminMutex_);

    // CM knobs first: these never need quiescence.
    cmBudget_.store(config.cm.htmBudget, std::memory_order_relaxed);
    cmPolicy_.store(static_cast<int>(config.cm.capacityPolicy),
                    std::memory_order_relaxed);

    const bool same_backend = config.backend == config_.backend;
    const bool same_threads = config.threads == config_.threads;
    if (same_backend && same_threads) {
        config_ = config;
        return;
    }

    Stopwatch sw;

    // Step (i): parallelism degree -> 0 (block every enabled thread;
    // block() returns once the thread is outside any transaction).
    for (int t = 0; t < tm::kMaxThreads; ++t) {
        if (registered_[t] && enabled_[t]) {
            gate_.block(t);
            enabled_[t] = false;
        }
    }

    // Step (ii): switch the TM algorithm.
    if (!same_backend) {
        tm::TmBackend *next =
            backends_[static_cast<std::size_t>(config.backend)].get();
        next->reset();
        currentBackend_.store(next, std::memory_order_release);
    }

    // Step (iii): parallelism degree -> P.
    for (int t = 0; t < tm::kMaxThreads; ++t) {
        if (registered_[t] && enabledUnder(config, t)) {
            gate_.unblock(t);
            enabled_[t] = true;
        }
    }

    config_ = config;
    lastReconfigureNanos_.store(sw.elapsedNanos(),
                                std::memory_order_relaxed);
}

TmConfig
PolyTm::currentConfig() const
{
    std::lock_guard<std::mutex> lk(adminMutex_);
    return config_;
}

void
PolyTm::setPinned(int tid, bool pinned)
{
    if (tid < 0 || tid >= tm::kMaxThreads) {
        throw std::out_of_range(
            "PolyTm::setPinned: tid outside [0, kMaxThreads) - "
            "stale token after deregisterThread?");
    }
    std::lock_guard<std::mutex> lk(adminMutex_);
    pinned_[tid] = pinned;
    if (pinned && registered_[tid] && !enabled_[tid]) {
        gate_.unblock(tid);
        enabled_[tid] = true;
    }
    // Unpin must be symmetric: a thread enabled only by its pin goes
    // back behind the gate, or a transient pin (KvStore::multiOp)
    // would permanently defeat the configured parallelism degree.
    if (!pinned && registered_[tid] && enabled_[tid] &&
        !enabledUnder(config_, tid)) {
        gate_.block(tid);
        enabled_[tid] = false;
    }
}

void
PolyTm::resumeAllForShutdown()
{
    std::lock_guard<std::mutex> lk(adminMutex_);
    for (int t = 0; t < tm::kMaxThreads; ++t) {
        if (registered_[t] && !enabled_[t]) {
            gate_.unblock(t);
            enabled_[t] = true;
        }
    }
}

PolyStats
PolyTm::snapshotStats() const
{
    // adminMutex_ orders this against registerThread() publishing new
    // counters_ slots (the counter words themselves are atomics).
    std::lock_guard<std::mutex> lk(adminMutex_);
    PolyStats out;
    for (int t = 0; t < tm::kMaxThreads; ++t) {
        if (!counters_[t])
            continue;
        out.commits +=
            counters_[t]->commits.load(std::memory_order_relaxed);
        out.aborts += counters_[t]->aborts.load(std::memory_order_relaxed);
        for (std::size_t c = 0; c < out.abortsByCause.size(); ++c) {
            out.abortsByCause[c] +=
                counters_[t]->abortsByCause[c].load(
                    std::memory_order_relaxed);
        }
    }
    return out;
}

int
PolyTm::registeredThreads() const
{
    std::lock_guard<std::mutex> lk(adminMutex_);
    return numRegistered_;
}

tm::TmBackend &
PolyTm::backendFor(BackendKind kind)
{
    return *backends_[static_cast<std::size_t>(kind)];
}

} // namespace proteus::polytm
