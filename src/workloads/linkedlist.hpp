/**
 * @file
 * Transactional sorted linked list (set).
 *
 * O(n) traversals produce large read sets, making this the classic
 * "long reader vs writer" TM stress: NOrec-style value validation and
 * HTM read-capacity limits are both exercised hard.
 */

#ifndef PROTEUS_WORKLOADS_LINKEDLIST_HPP
#define PROTEUS_WORKLOADS_LINKEDLIST_HPP

#include <cstdint>

#include "polytm/polytm.hpp"
#include "workloads/tx_arena.hpp"

namespace proteus::workloads {

class LinkedListTx
{
  public:
    explicit LinkedListTx(TxArena &arena);

    bool insert(polytm::Tx &tx, std::uint64_t key);
    bool erase(polytm::Tx &tx, std::uint64_t key);
    bool contains(polytm::Tx &tx, std::uint64_t key);
    std::uint64_t size(polytm::Tx &tx);

    /** Quiesced-only: strictly ascending keys. */
    bool invariantsHold() const;

  private:
    struct Node
    {
        std::uint64_t key;
        std::uint64_t next; // Node*
    };

    static Node *asNode(std::uint64_t w)
    {
        return reinterpret_cast<Node *>(w);
    }
    static std::uint64_t asWord(Node *n)
    {
        return reinterpret_cast<std::uint64_t>(n);
    }

    TxArena &arena_;
    Node *head_; //!< sentinel
    std::uint64_t count_ = 0;
};

} // namespace proteus::workloads

#endif // PROTEUS_WORKLOADS_LINKEDLIST_HPP
