#include "workloads/linkedlist.hpp"

namespace proteus::workloads {

using polytm::Tx;

LinkedListTx::LinkedListTx(TxArena &arena) : arena_(arena)
{
    head_ = arena_.create<Node>();
    head_->key = 0;
    head_->next = 0;
}

bool
LinkedListTx::contains(Tx &tx, std::uint64_t key)
{
    Node *cur = asNode(tx.readWord(&head_->next));
    while (cur) {
        const std::uint64_t k = tx.readWord(&cur->key);
        if (k == key)
            return true;
        if (k > key)
            return false;
        cur = asNode(tx.readWord(&cur->next));
    }
    return false;
}

bool
LinkedListTx::insert(Tx &tx, std::uint64_t key)
{
    Node *prev = head_;
    Node *cur = asNode(tx.readWord(&head_->next));
    while (cur) {
        const std::uint64_t k = tx.readWord(&cur->key);
        if (k == key)
            return false;
        if (k > key)
            break;
        prev = cur;
        cur = asNode(tx.readWord(&cur->next));
    }
    Node *node = arena_.create<Node>();
    node->key = key;
    node->next = asWord(cur);
    tx.writeWord(&prev->next, asWord(node));
    tx.writeWord(&count_, tx.readWord(&count_) + 1);
    return true;
}

bool
LinkedListTx::erase(Tx &tx, std::uint64_t key)
{
    Node *prev = head_;
    Node *cur = asNode(tx.readWord(&head_->next));
    while (cur) {
        const std::uint64_t k = tx.readWord(&cur->key);
        if (k == key) {
            tx.writeWord(&prev->next, tx.readWord(&cur->next));
            tx.writeWord(&count_, tx.readWord(&count_) - 1);
            return true;
        }
        if (k > key)
            return false;
        prev = cur;
        cur = asNode(tx.readWord(&cur->next));
    }
    return false;
}

std::uint64_t
LinkedListTx::size(Tx &tx)
{
    return tx.readWord(&count_);
}

bool
LinkedListTx::invariantsHold() const
{
    const Node *cur = asNode(head_->next);
    std::uint64_t last = 0;
    bool first = true;
    std::uint64_t n = 0;
    while (cur) {
        if (!first && cur->key <= last)
            return false;
        last = cur->key;
        first = false;
        ++n;
        cur = asNode(cur->next);
    }
    return n == count_;
}

} // namespace proteus::workloads
