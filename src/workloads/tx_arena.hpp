/**
 * @file
 * Arena allocator for transactional data-structure nodes.
 *
 * Memory reclamation inside TM is a research topic of its own; this
 * reproduction sidesteps it the way most STM benchmarks do: nodes are
 * carved from an arena that stays mapped until the workload is torn
 * down, so a concurrent (even doomed/zombie) transaction can never
 * dereference unmapped memory, and unlinking a node simply drops it
 * from the structure. An allocation made by an attempt that later
 * aborts leaks into the arena until teardown — bounded by run length
 * and documented in DESIGN.md.
 */

#ifndef PROTEUS_WORKLOADS_TX_ARENA_HPP
#define PROTEUS_WORKLOADS_TX_ARENA_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

namespace proteus::workloads {

class TxArena
{
  public:
    explicit TxArena(std::size_t chunk_bytes = std::size_t{1} << 20)
        : chunkBytes_(chunk_bytes)
    {}

    TxArena(const TxArena &) = delete;
    TxArena &operator=(const TxArena &) = delete;

    /** Allocate 8-byte-aligned raw storage. Thread-safe. */
    void *
    alloc(std::size_t bytes)
    {
        bytes = (bytes + 7) & ~std::size_t{7};
        std::lock_guard<std::mutex> lk(mutex_);
        if (offset_ + bytes > currentSize_) {
            const std::size_t size = std::max(chunkBytes_, bytes);
            chunks_.push_back(std::make_unique<std::byte[]>(size));
            currentSize_ = size;
            offset_ = 0;
        }
        void *out = chunks_.back().get() + offset_;
        offset_ += bytes;
        return out;
    }

    /** Construct a T in the arena (destructor never runs: PODs only). */
    template <typename T, typename... Args>
    T *
    create(Args &&...args)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena objects are never destroyed individually");
        return new (alloc(sizeof(T))) T(std::forward<Args>(args)...);
    }

    /** Total bytes reserved (tests / leak accounting). */
    std::size_t
    reservedBytes() const
    {
        std::lock_guard<std::mutex> lk(mutex_);
        return chunks_.size() * chunkBytes_;
    }

  private:
    const std::size_t chunkBytes_;
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<std::byte[]>> chunks_;
    std::size_t currentSize_ = 0;
    std::size_t offset_ = 0;
};

} // namespace proteus::workloads

#endif // PROTEUS_WORKLOADS_TX_ARENA_HPP
