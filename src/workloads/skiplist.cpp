#include "workloads/skiplist.hpp"

namespace proteus::workloads {

using polytm::Tx;

SkipListTx::SkipListTx(TxArena &arena) : arena_(arena)
{
    head_ = arena_.create<Node>();
    head_->key = 0;
    head_->value = 0;
    head_->level = kMaxLevel;
    for (auto &n : head_->next)
        n = 0;
}

int
SkipListTx::levelFor(std::uint64_t key)
{
    std::uint64_t h = key * 0x9e3779b97f4a7c15ull;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 32;
    int level = 1;
    while ((h & 1) && level < kMaxLevel) {
        ++level;
        h >>= 1;
    }
    return level;
}

bool
SkipListTx::lookup(Tx &tx, std::uint64_t key, std::uint64_t *value)
{
    Node *cur = head_;
    for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
        for (;;) {
            Node *next = asNode(tx.readWord(&cur->next[lvl]));
            if (!next || tx.readWord(&next->key) >= key)
                break;
            cur = next;
        }
    }
    Node *cand = asNode(tx.readWord(&cur->next[0]));
    if (cand && tx.readWord(&cand->key) == key) {
        if (value)
            *value = tx.readWord(&cand->value);
        return true;
    }
    return false;
}

bool
SkipListTx::insert(Tx &tx, std::uint64_t key, std::uint64_t value)
{
    Node *update[kMaxLevel];
    Node *cur = head_;
    for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
        for (;;) {
            Node *next = asNode(tx.readWord(&cur->next[lvl]));
            if (!next || tx.readWord(&next->key) >= key)
                break;
            cur = next;
        }
        update[lvl] = cur;
    }

    Node *cand = asNode(tx.readWord(&cur->next[0]));
    if (cand && tx.readWord(&cand->key) == key) {
        tx.writeWord(&cand->value, value);
        return false;
    }

    const int level = levelFor(key);
    Node *node = arena_.create<Node>();
    node->key = key;
    node->value = value;
    node->level = static_cast<std::uint64_t>(level);
    for (int lvl = 0; lvl < level; ++lvl) {
        // Private until linked; raw init of the new node is safe.
        node->next[lvl] = tx.readWord(&update[lvl]->next[lvl]);
        tx.writeWord(&update[lvl]->next[lvl], asWord(node));
    }
    tx.writeWord(&count_, tx.readWord(&count_) + 1);
    return true;
}

bool
SkipListTx::erase(Tx &tx, std::uint64_t key)
{
    Node *update[kMaxLevel];
    Node *cur = head_;
    for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
        for (;;) {
            Node *next = asNode(tx.readWord(&cur->next[lvl]));
            if (!next || tx.readWord(&next->key) >= key)
                break;
            cur = next;
        }
        update[lvl] = cur;
    }

    Node *victim = asNode(tx.readWord(&cur->next[0]));
    if (!victim || tx.readWord(&victim->key) != key)
        return false;

    const auto level = static_cast<int>(tx.readWord(&victim->level));
    for (int lvl = 0; lvl < level; ++lvl) {
        if (tx.readWord(&update[lvl]->next[lvl]) == asWord(victim)) {
            tx.writeWord(&update[lvl]->next[lvl],
                         tx.readWord(&victim->next[lvl]));
        }
    }
    tx.writeWord(&count_, tx.readWord(&count_) - 1);
    return true;
}

std::uint64_t
SkipListTx::size(Tx &tx)
{
    return tx.readWord(&count_);
}

bool
SkipListTx::invariantsHold() const
{
    for (int lvl = 0; lvl < kMaxLevel; ++lvl) {
        const Node *cur = asNode(head_->next[lvl]);
        std::uint64_t last = 0;
        bool first = true;
        while (cur) {
            if (!first && cur->key <= last)
                return false;
            last = cur->key;
            first = false;
            cur = asNode(cur->next[lvl]);
        }
    }
    // Every level-0 node must appear in all of its tower levels.
    for (const Node *n = asNode(head_->next[0]); n;
         n = asNode(n->next[0])) {
        for (std::uint64_t lvl = 1; lvl < n->level; ++lvl) {
            const Node *cur = asNode(head_->next[lvl]);
            bool found = false;
            while (cur) {
                if (cur == n) {
                    found = true;
                    break;
                }
                cur = asNode(cur->next[lvl]);
            }
            if (!found)
                return false;
        }
    }
    return true;
}

} // namespace proteus::workloads
