/**
 * @file
 * Data-structure workloads (the paper's Table 1 "Data Structures"
 * suite): red-black tree, skip list, linked list, hash map, each with
 * tunable key range and update ratio.
 */

#ifndef PROTEUS_WORKLOADS_DATA_STRUCTURE_WORKLOADS_HPP
#define PROTEUS_WORKLOADS_DATA_STRUCTURE_WORKLOADS_HPP

#include "workloads/hashmap.hpp"
#include "workloads/linkedlist.hpp"
#include "workloads/rbtree.hpp"
#include "workloads/skiplist.hpp"
#include "workloads/workload.hpp"

namespace proteus::workloads {

/** Shared knobs for set-like workloads. */
struct SetWorkloadOptions
{
    std::uint64_t keyRange = 1 << 16;
    std::uint64_t initialKeys = 1 << 15;
    /** Fraction of ops that mutate (half inserts, half erases). */
    double updateRatio = 0.3;
    /** Zipf skew of the accessed keys (0 = uniform). */
    double skew = 0.0;
};

class RbTreeWorkload : public TxWorkload
{
  public:
    explicit RbTreeWorkload(SetWorkloadOptions opts = {});
    std::string name() const override { return "rbt"; }
    void setup(polytm::PolyTm &poly, polytm::ThreadToken &token) override;
    void op(polytm::PolyTm &poly, polytm::ThreadToken &token,
            Rng &rng) override;
    bool consistent() const override { return tree_.invariantsHold(); }

  private:
    SetWorkloadOptions opts_;
    TxArena arena_;
    RedBlackTreeTx tree_{arena_};
};

class SkipListWorkload : public TxWorkload
{
  public:
    explicit SkipListWorkload(SetWorkloadOptions opts = {});
    std::string name() const override { return "skiplist"; }
    void setup(polytm::PolyTm &poly, polytm::ThreadToken &token) override;
    void op(polytm::PolyTm &poly, polytm::ThreadToken &token,
            Rng &rng) override;
    bool consistent() const override { return list_.invariantsHold(); }

  private:
    SetWorkloadOptions opts_;
    TxArena arena_;
    SkipListTx list_{arena_};
};

class LinkedListWorkload : public TxWorkload
{
  public:
    explicit LinkedListWorkload(SetWorkloadOptions opts = {});
    std::string name() const override { return "linkedlist"; }
    void setup(polytm::PolyTm &poly, polytm::ThreadToken &token) override;
    void op(polytm::PolyTm &poly, polytm::ThreadToken &token,
            Rng &rng) override;
    bool consistent() const override { return list_.invariantsHold(); }

  private:
    SetWorkloadOptions opts_;
    TxArena arena_;
    LinkedListTx list_{arena_};
};

class HashMapWorkload : public TxWorkload
{
  public:
    explicit HashMapWorkload(SetWorkloadOptions opts = {});
    std::string name() const override { return "hashmap"; }
    void setup(polytm::PolyTm &poly, polytm::ThreadToken &token) override;
    void op(polytm::PolyTm &poly, polytm::ThreadToken &token,
            Rng &rng) override;
    bool consistent() const override { return map_.invariantsHold(); }

  private:
    SetWorkloadOptions opts_;
    TxArena arena_;
    HashMapTx map_{arena_};
};

} // namespace proteus::workloads

#endif // PROTEUS_WORKLOADS_DATA_STRUCTURE_WORKLOADS_HPP
