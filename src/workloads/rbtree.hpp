/**
 * @file
 * Transactional red-black tree (CLRS-style, sentinel-based).
 *
 * Every node field is a 64-bit word accessed exclusively through the
 * active transaction, so the whole structure inherits the TM's
 * atomicity and isolation. This is the "Red-Black Tree" workload of
 * the paper's Data Structures suite (Table 1) and the subject of
 * Fig. 8a.
 */

#ifndef PROTEUS_WORKLOADS_RBTREE_HPP
#define PROTEUS_WORKLOADS_RBTREE_HPP

#include <cstdint>

#include "polytm/polytm.hpp"
#include "workloads/tx_arena.hpp"

namespace proteus::workloads {

class RedBlackTreeTx
{
  public:
    explicit RedBlackTreeTx(TxArena &arena);

    /** Insert key->value; returns false if the key already existed. */
    bool insert(polytm::Tx &tx, std::uint64_t key, std::uint64_t value);

    /** Remove a key; returns false if it was absent. */
    bool erase(polytm::Tx &tx, std::uint64_t key);

    /** Lookup; returns true and fills value if present. */
    bool lookup(polytm::Tx &tx, std::uint64_t key,
                std::uint64_t *value = nullptr);

    /** Number of keys (transactional read of a maintained counter). */
    std::uint64_t size(polytm::Tx &tx);

    // ---- non-transactional validation helpers (quiesced only) ------
    /** Checks BST order, red-red freedom and black-height balance. */
    bool invariantsHold() const;
    std::uint64_t sizeUnsafe() const;

  private:
    struct Node
    {
        std::uint64_t key = 0;
        std::uint64_t value = 0;
        std::uint64_t left = 0;   // Node*
        std::uint64_t right = 0;  // Node*
        std::uint64_t parent = 0; // Node*
        std::uint64_t red = 0;    // bool
    };

    static Node *asNode(std::uint64_t word)
    {
        return reinterpret_cast<Node *>(word);
    }
    static std::uint64_t asWord(Node *node)
    {
        return reinterpret_cast<std::uint64_t>(node);
    }

    // Transactional field accessors.
    Node *getLeft(polytm::Tx &tx, Node *n);
    Node *getRight(polytm::Tx &tx, Node *n);
    Node *getParent(polytm::Tx &tx, Node *n);
    bool isRed(polytm::Tx &tx, Node *n);
    std::uint64_t getKey(polytm::Tx &tx, Node *n);
    void setLeft(polytm::Tx &tx, Node *n, Node *v);
    void setRight(polytm::Tx &tx, Node *n, Node *v);
    void setParent(polytm::Tx &tx, Node *n, Node *v);
    void setRed(polytm::Tx &tx, Node *n, bool red);

    Node *rootNode(polytm::Tx &tx);
    void setRoot(polytm::Tx &tx, Node *n);

    void rotateLeft(polytm::Tx &tx, Node *x);
    void rotateRight(polytm::Tx &tx, Node *x);
    void insertFixup(polytm::Tx &tx, Node *z);
    void eraseFixup(polytm::Tx &tx, Node *x);
    void transplant(polytm::Tx &tx, Node *u, Node *v);
    Node *minimum(polytm::Tx &tx, Node *n);
    Node *findNode(polytm::Tx &tx, std::uint64_t key);

    bool checkNode(const Node *n, std::uint64_t lo, std::uint64_t hi,
                   int black_height, int *expected_height) const;

    TxArena &arena_;
    Node *nil_;                //!< shared black sentinel
    std::uint64_t root_ = 0;   //!< Node*, transactional word
    std::uint64_t count_ = 0;  //!< transactional size counter
};

} // namespace proteus::workloads

#endif // PROTEUS_WORKLOADS_RBTREE_HPP
