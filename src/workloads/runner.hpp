/**
 * @file
 * Multi-threaded workload runner used by tests, benches and examples.
 *
 * Spawns worker threads that register with PolyTM and execute
 * workload operations either for a fixed wall-clock duration or for a
 * fixed operation count. The PolyTM parallelism degree (not the
 * spawned thread count) decides how many of them make progress.
 */

#ifndef PROTEUS_WORKLOADS_RUNNER_HPP
#define PROTEUS_WORKLOADS_RUNNER_HPP

#include <cstdint>

#include "polytm/polytm.hpp"
#include "workloads/workload.hpp"

namespace proteus::workloads {

struct RunResult
{
    std::uint64_t ops = 0;      //!< operations completed
    double seconds = 0;         //!< wall time measured
    double opsPerSec = 0;
    std::uint64_t commits = 0;  //!< transactions committed (delta)
    std::uint64_t aborts = 0;   //!< aborts (delta)
};

/**
 * Run `workload.op` from `threads` workers for `seconds` wall-clock
 * seconds. setup() must already have been called.
 */
RunResult runTimed(polytm::PolyTm &poly, TxWorkload &workload,
                   int threads, double seconds,
                   std::uint64_t seed_base = 0x5eed);

/**
 * Run exactly `ops_per_thread` operations on each worker.
 * Precondition: the configured parallelism degree admits all
 * `threads` workers, otherwise parked workers can never finish.
 */
RunResult runOps(polytm::PolyTm &poly, TxWorkload &workload, int threads,
                 std::uint64_t ops_per_thread,
                 std::uint64_t seed_base = 0x5eed);

/** Convenience: register a token, run setup, deregister. */
void setupWorkload(polytm::PolyTm &poly, TxWorkload &workload);

} // namespace proteus::workloads

#endif // PROTEUS_WORKLOADS_RUNNER_HPP
