#include "workloads/data_structure_workloads.hpp"

namespace proteus::workloads {

using polytm::PolyTm;
using polytm::ThreadToken;
using polytm::Tx;

namespace {

/** Pick a key per the workload's range/skew. */
std::uint64_t
pickKey(Rng &rng, const SetWorkloadOptions &opts)
{
    if (opts.skew <= 0.0)
        return rng.nextBounded(opts.keyRange) + 1; // keys start at 1
    return rng.zipf(opts.keyRange, opts.skew) + 1;
}

} // namespace

// ---- RbTreeWorkload ------------------------------------------------------

RbTreeWorkload::RbTreeWorkload(SetWorkloadOptions opts) : opts_(opts) {}

void
RbTreeWorkload::setup(PolyTm &poly, ThreadToken &token)
{
    Rng rng(1);
    for (std::uint64_t i = 0; i < opts_.initialKeys; ++i) {
        const std::uint64_t key = pickKey(rng, opts_);
        poly.run(token,
                 [&](Tx &tx) { tree_.insert(tx, key, key * 3); });
    }
}

void
RbTreeWorkload::op(PolyTm &poly, ThreadToken &token, Rng &rng)
{
    const std::uint64_t key = pickKey(rng, opts_);
    const double roll = rng.nextDouble();
    if (roll < opts_.updateRatio / 2) {
        poly.run(token, [&](Tx &tx) { tree_.insert(tx, key, key); });
    } else if (roll < opts_.updateRatio) {
        poly.run(token, [&](Tx &tx) { tree_.erase(tx, key); });
    } else {
        poly.run(token, [&](Tx &tx) { tree_.lookup(tx, key); });
    }
}

// ---- SkipListWorkload ----------------------------------------------------

SkipListWorkload::SkipListWorkload(SetWorkloadOptions opts) : opts_(opts) {}

void
SkipListWorkload::setup(PolyTm &poly, ThreadToken &token)
{
    Rng rng(2);
    for (std::uint64_t i = 0; i < opts_.initialKeys; ++i) {
        const std::uint64_t key = pickKey(rng, opts_);
        poly.run(token,
                 [&](Tx &tx) { list_.insert(tx, key, key * 5); });
    }
}

void
SkipListWorkload::op(PolyTm &poly, ThreadToken &token, Rng &rng)
{
    const std::uint64_t key = pickKey(rng, opts_);
    const double roll = rng.nextDouble();
    if (roll < opts_.updateRatio / 2) {
        poly.run(token, [&](Tx &tx) { list_.insert(tx, key, key); });
    } else if (roll < opts_.updateRatio) {
        poly.run(token, [&](Tx &tx) { list_.erase(tx, key); });
    } else {
        poly.run(token, [&](Tx &tx) { list_.lookup(tx, key); });
    }
}

// ---- LinkedListWorkload --------------------------------------------------

LinkedListWorkload::LinkedListWorkload(SetWorkloadOptions opts)
    : opts_(opts)
{
}

void
LinkedListWorkload::setup(PolyTm &poly, ThreadToken &token)
{
    Rng rng(3);
    for (std::uint64_t i = 0; i < opts_.initialKeys; ++i) {
        const std::uint64_t key = pickKey(rng, opts_);
        poly.run(token, [&](Tx &tx) { list_.insert(tx, key); });
    }
}

void
LinkedListWorkload::op(PolyTm &poly, ThreadToken &token, Rng &rng)
{
    const std::uint64_t key = pickKey(rng, opts_);
    const double roll = rng.nextDouble();
    if (roll < opts_.updateRatio / 2) {
        poly.run(token, [&](Tx &tx) { list_.insert(tx, key); });
    } else if (roll < opts_.updateRatio) {
        poly.run(token, [&](Tx &tx) { list_.erase(tx, key); });
    } else {
        poly.run(token, [&](Tx &tx) { list_.contains(tx, key); });
    }
}

// ---- HashMapWorkload -----------------------------------------------------

HashMapWorkload::HashMapWorkload(SetWorkloadOptions opts) : opts_(opts) {}

void
HashMapWorkload::setup(PolyTm &poly, ThreadToken &token)
{
    Rng rng(4);
    for (std::uint64_t i = 0; i < opts_.initialKeys; ++i) {
        const std::uint64_t key = pickKey(rng, opts_);
        poly.run(token, [&](Tx &tx) { map_.put(tx, key, key * 7); });
    }
}

void
HashMapWorkload::op(PolyTm &poly, ThreadToken &token, Rng &rng)
{
    const std::uint64_t key = pickKey(rng, opts_);
    const double roll = rng.nextDouble();
    if (roll < opts_.updateRatio / 2) {
        poly.run(token, [&](Tx &tx) { map_.put(tx, key, key); });
    } else if (roll < opts_.updateRatio) {
        poly.run(token, [&](Tx &tx) { map_.erase(tx, key); });
    } else {
        poly.run(token, [&](Tx &tx) { map_.get(tx, key); });
    }
}

} // namespace proteus::workloads
