/**
 * @file
 * Uniform workload interface consumed by the benches and the runner.
 *
 * A TxWorkload owns its data and executes "operations" (each one or
 * more transactions) against a PolyTm instance. setup() runs single-
 * threaded; op() is called concurrently by worker threads.
 */

#ifndef PROTEUS_WORKLOADS_WORKLOAD_HPP
#define PROTEUS_WORKLOADS_WORKLOAD_HPP

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "polytm/polytm.hpp"

namespace proteus::workloads {

class TxWorkload
{
  public:
    virtual ~TxWorkload() = default;

    virtual std::string name() const = 0;

    /** Populate initial data (single-threaded, quiesced). */
    virtual void setup(polytm::PolyTm &poly,
                       polytm::ThreadToken &token) = 0;

    /** Execute one operation (thread-safe). */
    virtual void op(polytm::PolyTm &poly, polytm::ThreadToken &token,
                    Rng &rng) = 0;

    /** Post-run structural check (quiesced). */
    virtual bool consistent() const { return true; }
};

} // namespace proteus::workloads

#endif // PROTEUS_WORKLOADS_WORKLOAD_HPP
