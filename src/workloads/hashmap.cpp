#include "workloads/hashmap.hpp"

namespace proteus::workloads {

using polytm::Tx;

HashMapTx::HashMapTx(TxArena &arena, std::size_t log2_buckets)
    : arena_(arena), buckets_(std::size_t{1} << log2_buckets, 0),
      mask_((std::size_t{1} << log2_buckets) - 1)
{
}

std::size_t
HashMapTx::bucketOf(std::uint64_t key) const
{
    std::uint64_t h = key * 0x9e3779b97f4a7c15ull;
    h ^= h >> 32;
    return static_cast<std::size_t>(h) & mask_;
}

bool
HashMapTx::get(Tx &tx, std::uint64_t key, std::uint64_t *value)
{
    Node *cur = asNode(tx.readWord(&buckets_[bucketOf(key)]));
    while (cur) {
        if (tx.readWord(&cur->key) == key) {
            if (value)
                *value = tx.readWord(&cur->value);
            return true;
        }
        cur = asNode(tx.readWord(&cur->next));
    }
    return false;
}

bool
HashMapTx::put(Tx &tx, std::uint64_t key, std::uint64_t value)
{
    std::uint64_t *head = &buckets_[bucketOf(key)];
    Node *cur = asNode(tx.readWord(head));
    while (cur) {
        if (tx.readWord(&cur->key) == key) {
            tx.writeWord(&cur->value, value);
            return false;
        }
        cur = asNode(tx.readWord(&cur->next));
    }
    Node *node = arena_.create<Node>();
    node->key = key;
    node->value = value;
    node->next = tx.readWord(head);
    tx.writeWord(head, asWord(node));
    tx.writeWord(&count_, tx.readWord(&count_) + 1);
    return true;
}

bool
HashMapTx::erase(Tx &tx, std::uint64_t key)
{
    std::uint64_t *prev = &buckets_[bucketOf(key)];
    Node *cur = asNode(tx.readWord(prev));
    while (cur) {
        if (tx.readWord(&cur->key) == key) {
            tx.writeWord(prev, tx.readWord(&cur->next));
            tx.writeWord(&count_, tx.readWord(&count_) - 1);
            return true;
        }
        prev = &cur->next;
        cur = asNode(tx.readWord(&cur->next));
    }
    return false;
}

std::uint64_t
HashMapTx::size(Tx &tx)
{
    return tx.readWord(&count_);
}

bool
HashMapTx::invariantsHold() const
{
    std::uint64_t n = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        const Node *cur = asNode(buckets_[b]);
        while (cur) {
            if (bucketOf(cur->key) != b)
                return false;
            ++n;
            cur = asNode(cur->next);
        }
    }
    return n == count_;
}

} // namespace proteus::workloads
