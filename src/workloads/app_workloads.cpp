#include "workloads/app_workloads.hpp"

#include <algorithm>

namespace proteus::workloads {

using polytm::PolyTm;
using polytm::ThreadToken;
using polytm::Tx;

// ---- VacationWorkload ----------------------------------------------------

VacationWorkload::VacationWorkload(Options opts) : opts_(opts) {}

void
VacationWorkload::setup(PolyTm &poly, ThreadToken &token)
{
    Rng rng(11);
    for (int t = 0; t < 3; ++t) {
        resources_[t].resize(opts_.resourcesPerTable);
        for (std::uint64_t r = 0; r < opts_.resourcesPerTable; ++r) {
            resources_[t][r].capacity = 5 + rng.nextBounded(20);
            resources_[t][r].booked = 0;
            resources_[t][r].price = 50 + rng.nextBounded(450);
            poly.run(token, [&](Tx &tx) {
                tables_[t].insert(
                    tx, r + 1,
                    reinterpret_cast<std::uint64_t>(&resources_[t][r]));
            });
        }
    }
}

void
VacationWorkload::op(PolyTm &poly, ThreadToken &token, Rng &rng)
{
    const int table = static_cast<int>(rng.nextBounded(3));
    if (rng.nextDouble() < opts_.reservationRatio) {
        // Reservation: scan a few candidates, book the cheapest free.
        std::vector<std::uint64_t> candidates(
            static_cast<std::size_t>(opts_.queriesPerReservation));
        for (auto &c : candidates)
            c = rng.nextBounded(opts_.resourcesPerTable) + 1;
        poly.run(token, [&](Tx &tx) {
            Resource *best = nullptr;
            std::uint64_t best_price = ~std::uint64_t{0};
            for (const std::uint64_t key : candidates) {
                std::uint64_t word = 0;
                if (!tables_[table].lookup(tx, key, &word))
                    continue;
                auto *res = reinterpret_cast<Resource *>(word);
                const std::uint64_t cap = tx.readWord(&res->capacity);
                const std::uint64_t booked = tx.readWord(&res->booked);
                const std::uint64_t price = tx.readWord(&res->price);
                if (booked < cap && price < best_price) {
                    best = res;
                    best_price = price;
                }
            }
            if (best) {
                tx.writeWord(&best->booked,
                             tx.readWord(&best->booked) + 1);
                tx.writeWord(&totalBookings_,
                             tx.readWord(&totalBookings_) + 1);
            }
        });
    } else {
        // Management: re-price one resource (update transaction).
        const std::uint64_t key =
            rng.nextBounded(opts_.resourcesPerTable) + 1;
        const std::uint64_t new_price = 50 + rng.nextBounded(450);
        poly.run(token, [&](Tx &tx) {
            std::uint64_t word = 0;
            if (tables_[table].lookup(tx, key, &word)) {
                auto *res = reinterpret_cast<Resource *>(word);
                tx.writeWord(&res->price, new_price);
            }
        });
    }
}

std::uint64_t
VacationWorkload::totalBookedUnsafe() const
{
    std::uint64_t sum = 0;
    for (const auto &table : resources_) {
        for (const auto &r : table)
            sum += r.booked;
    }
    return sum;
}

bool
VacationWorkload::consistent() const
{
    for (const auto &table : resources_) {
        for (const auto &r : table) {
            if (r.booked > r.capacity)
                return false; // oversold
        }
    }
    // Conservation: the global counter equals the per-resource sum.
    if (totalBookedUnsafe() != totalBookings_)
        return false;
    for (const auto &t : tables_) {
        if (!t.invariantsHold())
            return false;
    }
    return true;
}

// ---- TpccLiteWorkload ------------------------------------------------------

TpccLiteWorkload::TpccLiteWorkload(Options opts) : opts_(opts) {}

void
TpccLiteWorkload::setup(PolyTm &, ThreadToken &)
{
    stock_.assign(static_cast<std::size_t>(opts_.items), 100000);
    districts_.assign(static_cast<std::size_t>(opts_.warehouses) *
                          opts_.districtsPerWarehouse,
                      District{1, 0});
    customerBal_.assign(districts_.size() *
                            static_cast<std::size_t>(
                                opts_.customersPerDistrict),
                        0);
    warehouseYtd_.assign(static_cast<std::size_t>(opts_.warehouses), 0);
}

void
TpccLiteWorkload::op(PolyTm &poly, ThreadToken &token, Rng &rng)
{
    const auto w = rng.nextBounded(opts_.warehouses);
    const auto d = rng.nextBounded(opts_.districtsPerWarehouse);
    const std::size_t district_idx =
        w * opts_.districtsPerWarehouse + d;

    if (rng.nextDouble() < opts_.newOrderRatio) {
        // new-order: allocate an order id, decrement stocks, insert
        // the order into the order tree.
        std::vector<std::uint64_t> items(
            static_cast<std::size_t>(opts_.linesPerOrder));
        for (auto &it : items)
            it = rng.nextBounded(opts_.items);
        poly.run(token, [&](Tx &tx) {
            District &dist = districts_[district_idx];
            const std::uint64_t oid = tx.readWord(&dist.nextOrderId);
            tx.writeWord(&dist.nextOrderId, oid + 1);
            for (const std::uint64_t item : items) {
                const std::uint64_t s = tx.readWord(&stock_[item]);
                tx.writeWord(&stock_[item], s > 0 ? s - 1 : 90000);
            }
            // Order key: globally unique (district, oid) pair.
            const std::uint64_t key =
                (static_cast<std::uint64_t>(district_idx) << 40) | oid;
            orders_.insert(tx, key, items.front());
            tx.writeWord(&orderCount_, tx.readWord(&orderCount_) + 1);
        });
    } else {
        // payment: move money onto customer/district/warehouse.
        const auto c = rng.nextBounded(opts_.customersPerDistrict);
        const std::size_t cust_idx =
            district_idx * opts_.customersPerDistrict + c;
        const std::uint64_t amount = 1 + rng.nextBounded(5000);
        poly.run(token, [&](Tx &tx) {
            tx.writeWord(&customerBal_[cust_idx],
                         tx.readWord(&customerBal_[cust_idx]) + amount);
            District &dist = districts_[district_idx];
            tx.writeWord(&dist.ytd, tx.readWord(&dist.ytd) + amount);
            tx.writeWord(&warehouseYtd_[w],
                         tx.readWord(&warehouseYtd_[w]) + amount);
        });
    }
}

bool
TpccLiteWorkload::consistent() const
{
    // Payment conservation: warehouse YTD equals the sum of its
    // districts' YTD, which equals the sum of customer balances.
    for (int w = 0; w < opts_.warehouses; ++w) {
        std::uint64_t district_sum = 0;
        std::uint64_t customer_sum = 0;
        for (int d = 0; d < opts_.districtsPerWarehouse; ++d) {
            const std::size_t di =
                static_cast<std::size_t>(w) * opts_.districtsPerWarehouse +
                d;
            district_sum += districts_[di].ytd;
            for (int c = 0; c < opts_.customersPerDistrict; ++c) {
                customer_sum +=
                    customerBal_[di * opts_.customersPerDistrict + c];
            }
        }
        if (district_sum != warehouseYtd_[w] ||
            customer_sum != warehouseYtd_[w]) {
            return false;
        }
    }
    // Order tree sanity + order ids match inserted orders.
    if (!orders_.invariantsHold())
        return false;
    std::uint64_t issued = 0;
    for (const auto &d : districts_)
        issued += d.nextOrderId - 1;
    return issued == orderCount_ && orders_.sizeUnsafe() == orderCount_;
}

// ---- KvCacheWorkload -------------------------------------------------------

KvCacheWorkload::KvCacheWorkload(Options opts) : opts_(opts) {}

void
KvCacheWorkload::setup(PolyTm &poly, ThreadToken &token)
{
    Rng rng(21);
    for (std::uint64_t i = 0; i < opts_.keys / 2; ++i) {
        const std::uint64_t key = rng.nextBounded(opts_.keys);
        poly.run(token, [&](Tx &tx) { map_.put(tx, key, i); });
    }
}

void
KvCacheWorkload::op(PolyTm &poly, ThreadToken &token, Rng &rng)
{
    const std::uint64_t key = opts_.skew > 0
        ? rng.zipf(opts_.keys, opts_.skew)
        : rng.nextBounded(opts_.keys);
    const double roll = rng.nextDouble();
    if (roll < opts_.getRatio) {
        poly.run(token, [&](Tx &tx) { map_.get(tx, key); });
    } else if (roll < opts_.getRatio + opts_.putRatio) {
        const std::uint64_t value = rng.nextU64() >> 8;
        poly.run(token, [&](Tx &tx) { map_.put(tx, key, value); });
    } else {
        poly.run(token, [&](Tx &tx) { map_.erase(tx, key); });
    }
}

// ---- GridRouterWorkload ----------------------------------------------------

GridRouterWorkload::GridRouterWorkload(Options opts) : opts_(opts)
{
    grid_.assign(static_cast<std::size_t>(opts_.side) * opts_.side, 0);
}

void
GridRouterWorkload::setup(PolyTm &, ThreadToken &)
{
}

void
GridRouterWorkload::op(PolyTm &poly, ThreadToken &token, Rng &rng)
{
    for (int attempt = 0; attempt < opts_.maxAttemptsPerOp; ++attempt) {
        const int x0 = static_cast<int>(rng.nextBounded(opts_.side));
        const int y0 = static_cast<int>(rng.nextBounded(opts_.side));
        const int x1 = static_cast<int>(rng.nextBounded(opts_.side));
        const int y1 = static_cast<int>(rng.nextBounded(opts_.side));
        bool claimed = false;
        poly.run(token, [&](Tx &tx) {
            claimed = false;
            // L-shaped route: horizontal then vertical leg. First
            // check every cell is free, then claim the whole path.
            const int xs = std::min(x0, x1), xe = std::max(x0, x1);
            const int ys = std::min(y0, y1), ye = std::max(y0, y1);
            for (int x = xs; x <= xe; ++x) {
                if (tx.readWord(cell(x, y0)) != 0)
                    return;
            }
            for (int y = ys; y <= ye; ++y) {
                if (tx.readWord(cell(x1, y)) != 0)
                    return;
            }
            const std::uint64_t id = tx.readWord(&nextRouteId_);
            tx.writeWord(&nextRouteId_, id + 1);
            for (int x = xs; x <= xe; ++x)
                tx.writeWord(cell(x, y0), id);
            for (int y = ys; y <= ye; ++y)
                tx.writeWord(cell(x1, y), id);
            tx.writeWord(&routed_, tx.readWord(&routed_) + 1);
            claimed = true;
        });
        if (claimed)
            return;
    }
}

bool
GridRouterWorkload::consistent() const
{
    // Every claimed route id must be contiguous: cells with the same
    // id form one L-path; weaker practical check: ids are less than
    // nextRouteId_ and the number of distinct ids equals routed_.
    std::vector<std::uint64_t> ids;
    for (const std::uint64_t c : grid_) {
        if (c != 0) {
            if (c >= nextRouteId_)
                return false;
            ids.push_back(c);
        }
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids.size() == routed_;
}

// ---- SyntheticWorkload -----------------------------------------------------

SyntheticWorkload::SyntheticWorkload(Options opts) : opts_(opts)
{
    slots_.assign(opts_.arraySlots, 1);
}

void
SyntheticWorkload::setup(PolyTm &, ThreadToken &)
{
}

void
SyntheticWorkload::op(PolyTm &poly, ThreadToken &token, Rng &rng)
{
    // Pre-draw the slots so aborted retries replay identical accesses.
    std::vector<std::uint64_t> read_slots(
        static_cast<std::size_t>(opts_.reads));
    std::vector<std::uint64_t> write_slots(
        static_cast<std::size_t>(opts_.writes));
    for (auto &s : read_slots) {
        s = opts_.skew > 0 ? rng.zipf(opts_.arraySlots, opts_.skew)
                           : rng.nextBounded(opts_.arraySlots);
    }
    for (auto &s : write_slots) {
        s = opts_.skew > 0 ? rng.zipf(opts_.arraySlots, opts_.skew)
                           : rng.nextBounded(opts_.arraySlots);
    }
    poly.run(token, [&](Tx &tx) {
        std::uint64_t acc = 0;
        for (const auto s : read_slots)
            acc += tx.readWord(&slots_[s]);
        for (const auto s : write_slots)
            tx.writeWord(&slots_[s], acc + s);
    });
}

} // namespace proteus::workloads
