/**
 * @file
 * Transactional skip list (sorted set/map).
 *
 * Tower heights are a deterministic hash of the key, so re-executed
 * (aborted) transactions rebuild identical towers without consuming
 * randomness inside the transaction body.
 */

#ifndef PROTEUS_WORKLOADS_SKIPLIST_HPP
#define PROTEUS_WORKLOADS_SKIPLIST_HPP

#include <cstdint>

#include "polytm/polytm.hpp"
#include "workloads/tx_arena.hpp"

namespace proteus::workloads {

class SkipListTx
{
  public:
    static constexpr int kMaxLevel = 16;

    explicit SkipListTx(TxArena &arena);

    bool insert(polytm::Tx &tx, std::uint64_t key, std::uint64_t value);
    bool erase(polytm::Tx &tx, std::uint64_t key);
    bool lookup(polytm::Tx &tx, std::uint64_t key,
                std::uint64_t *value = nullptr);
    std::uint64_t size(polytm::Tx &tx);

    /** Quiesced-only: ascending key order at every level. */
    bool invariantsHold() const;

  private:
    struct Node
    {
        std::uint64_t key;
        std::uint64_t value;
        std::uint64_t level; // number of forward links
        std::uint64_t next[kMaxLevel];
    };

    static Node *asNode(std::uint64_t w)
    {
        return reinterpret_cast<Node *>(w);
    }
    static std::uint64_t asWord(Node *n)
    {
        return reinterpret_cast<std::uint64_t>(n);
    }

    /** Deterministic tower height for a key (geometric, p=1/2). */
    static int levelFor(std::uint64_t key);

    TxArena &arena_;
    Node *head_;
    std::uint64_t count_ = 0;
};

} // namespace proteus::workloads

#endif // PROTEUS_WORKLOADS_SKIPLIST_HPP
