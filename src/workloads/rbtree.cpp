#include "workloads/rbtree.hpp"

namespace proteus::workloads {

using polytm::Tx;

RedBlackTreeTx::RedBlackTreeTx(TxArena &arena) : arena_(arena)
{
    nil_ = arena_.create<Node>();
    nil_->red = 0;
    nil_->left = nil_->right = nil_->parent = asWord(nil_);
    root_ = asWord(nil_);
}

// ---- field accessors ---------------------------------------------------

RedBlackTreeTx::Node *
RedBlackTreeTx::getLeft(Tx &tx, Node *n)
{
    return asNode(tx.readWord(&n->left));
}

RedBlackTreeTx::Node *
RedBlackTreeTx::getRight(Tx &tx, Node *n)
{
    return asNode(tx.readWord(&n->right));
}

RedBlackTreeTx::Node *
RedBlackTreeTx::getParent(Tx &tx, Node *n)
{
    return asNode(tx.readWord(&n->parent));
}

bool
RedBlackTreeTx::isRed(Tx &tx, Node *n)
{
    return tx.readWord(&n->red) != 0;
}

std::uint64_t
RedBlackTreeTx::getKey(Tx &tx, Node *n)
{
    return tx.readWord(&n->key);
}

void
RedBlackTreeTx::setLeft(Tx &tx, Node *n, Node *v)
{
    tx.writeWord(&n->left, asWord(v));
}

void
RedBlackTreeTx::setRight(Tx &tx, Node *n, Node *v)
{
    tx.writeWord(&n->right, asWord(v));
}

void
RedBlackTreeTx::setParent(Tx &tx, Node *n, Node *v)
{
    tx.writeWord(&n->parent, asWord(v));
}

void
RedBlackTreeTx::setRed(Tx &tx, Node *n, bool red)
{
    tx.writeWord(&n->red, red ? 1 : 0);
}

RedBlackTreeTx::Node *
RedBlackTreeTx::rootNode(Tx &tx)
{
    return asNode(tx.readWord(&root_));
}

void
RedBlackTreeTx::setRoot(Tx &tx, Node *n)
{
    tx.writeWord(&root_, asWord(n));
}

// ---- rotations ---------------------------------------------------------

void
RedBlackTreeTx::rotateLeft(Tx &tx, Node *x)
{
    Node *y = getRight(tx, x);
    Node *yl = getLeft(tx, y);
    setRight(tx, x, yl);
    if (yl != nil_)
        setParent(tx, yl, x);
    Node *xp = getParent(tx, x);
    setParent(tx, y, xp);
    if (xp == nil_)
        setRoot(tx, y);
    else if (x == getLeft(tx, xp))
        setLeft(tx, xp, y);
    else
        setRight(tx, xp, y);
    setLeft(tx, y, x);
    setParent(tx, x, y);
}

void
RedBlackTreeTx::rotateRight(Tx &tx, Node *x)
{
    Node *y = getLeft(tx, x);
    Node *yr = getRight(tx, y);
    setLeft(tx, x, yr);
    if (yr != nil_)
        setParent(tx, yr, x);
    Node *xp = getParent(tx, x);
    setParent(tx, y, xp);
    if (xp == nil_)
        setRoot(tx, y);
    else if (x == getRight(tx, xp))
        setRight(tx, xp, y);
    else
        setLeft(tx, xp, y);
    setRight(tx, y, x);
    setParent(tx, x, y);
}

// ---- search ------------------------------------------------------------

RedBlackTreeTx::Node *
RedBlackTreeTx::findNode(Tx &tx, std::uint64_t key)
{
    Node *cur = rootNode(tx);
    while (cur != nil_) {
        const std::uint64_t k = getKey(tx, cur);
        if (key == k)
            return cur;
        cur = key < k ? getLeft(tx, cur) : getRight(tx, cur);
    }
    return nullptr;
}

bool
RedBlackTreeTx::lookup(Tx &tx, std::uint64_t key, std::uint64_t *value)
{
    Node *n = findNode(tx, key);
    if (!n)
        return false;
    if (value)
        *value = tx.readWord(&n->value);
    return true;
}

std::uint64_t
RedBlackTreeTx::size(Tx &tx)
{
    return tx.readWord(&count_);
}

// ---- insert ------------------------------------------------------------

bool
RedBlackTreeTx::insert(Tx &tx, std::uint64_t key, std::uint64_t value)
{
    Node *parent = nil_;
    Node *cur = rootNode(tx);
    while (cur != nil_) {
        parent = cur;
        const std::uint64_t k = getKey(tx, cur);
        if (key == k) {
            tx.writeWord(&cur->value, value);
            return false; // overwrite, no structural change
        }
        cur = key < k ? getLeft(tx, cur) : getRight(tx, cur);
    }

    Node *z = arena_.create<Node>();
    // The node is private until linked: raw initialization is safe
    // and keeps the write set small.
    z->key = key;
    z->value = value;
    z->left = z->right = asWord(nil_);
    z->parent = asWord(parent);
    z->red = 1;

    if (parent == nil_)
        setRoot(tx, z);
    else if (key < getKey(tx, parent))
        setLeft(tx, parent, z);
    else
        setRight(tx, parent, z);

    insertFixup(tx, z);
    tx.writeWord(&count_, tx.readWord(&count_) + 1);
    return true;
}

void
RedBlackTreeTx::insertFixup(Tx &tx, Node *z)
{
    while (true) {
        Node *zp = getParent(tx, z);
        if (zp == nil_ || !isRed(tx, zp))
            break;
        Node *zpp = getParent(tx, zp);
        if (zp == getLeft(tx, zpp)) {
            Node *y = getRight(tx, zpp); // uncle
            if (y != nil_ && isRed(tx, y)) {
                setRed(tx, zp, false);
                setRed(tx, y, false);
                setRed(tx, zpp, true);
                z = zpp;
            } else {
                if (z == getRight(tx, zp)) {
                    z = zp;
                    rotateLeft(tx, z);
                    zp = getParent(tx, z);
                    zpp = getParent(tx, zp);
                }
                setRed(tx, zp, false);
                setRed(tx, zpp, true);
                rotateRight(tx, zpp);
            }
        } else {
            Node *y = getLeft(tx, zpp);
            if (y != nil_ && isRed(tx, y)) {
                setRed(tx, zp, false);
                setRed(tx, y, false);
                setRed(tx, zpp, true);
                z = zpp;
            } else {
                if (z == getLeft(tx, zp)) {
                    z = zp;
                    rotateRight(tx, z);
                    zp = getParent(tx, z);
                    zpp = getParent(tx, zp);
                }
                setRed(tx, zp, false);
                setRed(tx, zpp, true);
                rotateLeft(tx, zpp);
            }
        }
    }
    setRed(tx, rootNode(tx), false);
}

// ---- erase -------------------------------------------------------------

void
RedBlackTreeTx::transplant(Tx &tx, Node *u, Node *v)
{
    Node *up = getParent(tx, u);
    if (up == nil_)
        setRoot(tx, v);
    else if (u == getLeft(tx, up))
        setLeft(tx, up, v);
    else
        setRight(tx, up, v);
    setParent(tx, v, up); // nil_'s parent is scribbled on, per CLRS
}

RedBlackTreeTx::Node *
RedBlackTreeTx::minimum(Tx &tx, Node *n)
{
    Node *l = getLeft(tx, n);
    while (l != nil_) {
        n = l;
        l = getLeft(tx, n);
    }
    return n;
}

bool
RedBlackTreeTx::erase(Tx &tx, std::uint64_t key)
{
    Node *z = findNode(tx, key);
    if (!z)
        return false;

    Node *y = z;
    bool y_was_red = isRed(tx, y);
    Node *x = nil_;

    if (getLeft(tx, z) == nil_) {
        x = getRight(tx, z);
        transplant(tx, z, x);
    } else if (getRight(tx, z) == nil_) {
        x = getLeft(tx, z);
        transplant(tx, z, x);
    } else {
        y = minimum(tx, getRight(tx, z));
        y_was_red = isRed(tx, y);
        x = getRight(tx, y);
        if (getParent(tx, y) == z) {
            setParent(tx, x, y);
        } else {
            transplant(tx, y, x);
            Node *zr = getRight(tx, z);
            setRight(tx, y, zr);
            setParent(tx, zr, y);
        }
        transplant(tx, z, y);
        Node *zl = getLeft(tx, z);
        setLeft(tx, y, zl);
        setParent(tx, zl, y);
        setRed(tx, y, isRed(tx, z));
    }

    if (!y_was_red)
        eraseFixup(tx, x);
    tx.writeWord(&count_, tx.readWord(&count_) - 1);
    return true;
}

void
RedBlackTreeTx::eraseFixup(Tx &tx, Node *x)
{
    while (x != rootNode(tx) && !isRed(tx, x)) {
        Node *xp = getParent(tx, x);
        if (x == getLeft(tx, xp)) {
            Node *w = getRight(tx, xp);
            if (isRed(tx, w)) {
                setRed(tx, w, false);
                setRed(tx, xp, true);
                rotateLeft(tx, xp);
                w = getRight(tx, xp);
            }
            if (!isRed(tx, getLeft(tx, w)) &&
                !isRed(tx, getRight(tx, w))) {
                setRed(tx, w, true);
                x = xp;
            } else {
                if (!isRed(tx, getRight(tx, w))) {
                    setRed(tx, getLeft(tx, w), false);
                    setRed(tx, w, true);
                    rotateRight(tx, w);
                    w = getRight(tx, xp);
                }
                setRed(tx, w, isRed(tx, xp));
                setRed(tx, xp, false);
                setRed(tx, getRight(tx, w), false);
                rotateLeft(tx, xp);
                x = rootNode(tx);
                break;
            }
        } else {
            Node *w = getLeft(tx, xp);
            if (isRed(tx, w)) {
                setRed(tx, w, false);
                setRed(tx, xp, true);
                rotateRight(tx, xp);
                w = getLeft(tx, xp);
            }
            if (!isRed(tx, getRight(tx, w)) &&
                !isRed(tx, getLeft(tx, w))) {
                setRed(tx, w, true);
                x = xp;
            } else {
                if (!isRed(tx, getLeft(tx, w))) {
                    setRed(tx, getRight(tx, w), false);
                    setRed(tx, w, true);
                    rotateLeft(tx, w);
                    w = getLeft(tx, xp);
                }
                setRed(tx, w, isRed(tx, xp));
                setRed(tx, xp, false);
                setRed(tx, getLeft(tx, w), false);
                rotateRight(tx, xp);
                x = rootNode(tx);
                break;
            }
        }
    }
    setRed(tx, x, false);
}

// ---- non-transactional validation ---------------------------------------

bool
RedBlackTreeTx::checkNode(const Node *n, std::uint64_t lo,
                          std::uint64_t hi, int black_height,
                          int *expected_height) const
{
    if (n == nil_) {
        if (*expected_height < 0)
            *expected_height = black_height;
        return black_height == *expected_height;
    }
    if (n->key < lo || n->key > hi)
        return false;
    const auto *l = reinterpret_cast<const Node *>(n->left);
    const auto *r = reinterpret_cast<const Node *>(n->right);
    if (n->red) {
        if ((l != nil_ && l->red) || (r != nil_ && r->red))
            return false; // red-red violation
    }
    const int next = black_height + (n->red ? 0 : 1);
    const std::uint64_t key = n->key;
    return checkNode(l, lo, key == 0 ? 0 : key - 1, next,
                     expected_height) &&
           checkNode(r, key + 1, hi, next, expected_height);
}

bool
RedBlackTreeTx::invariantsHold() const
{
    const auto *root = reinterpret_cast<const Node *>(root_);
    if (root == nil_)
        return true;
    if (root->red)
        return false;
    int expected = -1;
    return checkNode(root, 0, ~std::uint64_t{0}, 0, &expected);
}

std::uint64_t
RedBlackTreeTx::sizeUnsafe() const
{
    return count_;
}

} // namespace proteus::workloads
