/**
 * @file
 * Transactional chained hash map with a fixed bucket array.
 *
 * Short transactions over well-spread buckets: the scalable,
 * HTM-friendly end of the workload spectrum.
 */

#ifndef PROTEUS_WORKLOADS_HASHMAP_HPP
#define PROTEUS_WORKLOADS_HASHMAP_HPP

#include <cstdint>
#include <vector>

#include "polytm/polytm.hpp"
#include "workloads/tx_arena.hpp"

namespace proteus::workloads {

class HashMapTx
{
  public:
    HashMapTx(TxArena &arena, std::size_t log2_buckets = 14);

    /** Insert or overwrite; returns true if the key was new. */
    bool put(polytm::Tx &tx, std::uint64_t key, std::uint64_t value);
    bool erase(polytm::Tx &tx, std::uint64_t key);
    bool get(polytm::Tx &tx, std::uint64_t key,
             std::uint64_t *value = nullptr);
    std::uint64_t size(polytm::Tx &tx);

    /** Quiesced-only: every key hashes to the bucket holding it. */
    bool invariantsHold() const;

  private:
    struct Node
    {
        std::uint64_t key;
        std::uint64_t value;
        std::uint64_t next; // Node*
    };

    static Node *asNode(std::uint64_t w)
    {
        return reinterpret_cast<Node *>(w);
    }
    static std::uint64_t asWord(Node *n)
    {
        return reinterpret_cast<std::uint64_t>(n);
    }

    std::size_t bucketOf(std::uint64_t key) const;

    TxArena &arena_;
    std::vector<std::uint64_t> buckets_; //!< Node* heads
    std::size_t mask_;
    std::uint64_t count_ = 0;
};

} // namespace proteus::workloads

#endif // PROTEUS_WORKLOADS_HASHMAP_HPP
