/**
 * @file
 * Application-level workloads standing in for the paper's ports:
 *  - VacationWorkload:   STAMP vacation (travel reservation system);
 *  - TpccLiteWorkload:   TPC-C new-order/payment over in-memory tables;
 *  - KvCacheWorkload:    memcached-style transactional cache;
 *  - GridRouterWorkload: labyrinth-style path router (huge txs);
 *  - SyntheticWorkload:  parametric array kernel (Table 4 micro).
 */

#ifndef PROTEUS_WORKLOADS_APP_WORKLOADS_HPP
#define PROTEUS_WORKLOADS_APP_WORKLOADS_HPP

#include <array>
#include <vector>

#include "workloads/hashmap.hpp"
#include "workloads/rbtree.hpp"
#include "workloads/workload.hpp"

namespace proteus::workloads {

/**
 * Travel reservation system: three resource tables (flights, rooms,
 * cars) plus customers. A reservation transaction looks up several
 * candidate resources, picks the cheapest with free capacity and
 * books it; management transactions add/remove resources.
 */
struct VacationOptions
{
    std::uint64_t resourcesPerTable = 4096;
    std::uint64_t customers = 4096;
    int queriesPerReservation = 8;
    double reservationRatio = 0.8; // rest: management updates
};

class VacationWorkload : public TxWorkload
{
  public:
    using Options = VacationOptions;

    explicit VacationWorkload(Options opts = {});
    std::string name() const override { return "vacation"; }
    void setup(polytm::PolyTm &poly, polytm::ThreadToken &token) override;
    void op(polytm::PolyTm &poly, polytm::ThreadToken &token,
            Rng &rng) override;
    bool consistent() const override;

    /** Sum of booked seats across tables (conservation testing). */
    std::uint64_t totalBookedUnsafe() const;

  private:
    struct Resource
    {
        std::uint64_t capacity;
        std::uint64_t booked;
        std::uint64_t price;
    };

    Options opts_;
    TxArena arena_;
    std::array<RedBlackTreeTx, 3> tables_{
        RedBlackTreeTx{arena_}, RedBlackTreeTx{arena_},
        RedBlackTreeTx{arena_}};
    std::vector<Resource> resources_[3];
    std::uint64_t totalBookings_ = 0; //!< transactional counter
};

/**
 * TPC-C-lite: warehouses/districts/customers as flat tables, orders
 * appended to a transactional tree. new-order touches a district
 * counter, several stock rows and inserts an order (long update tx);
 * payment updates three balances (short update tx).
 */
struct TpccLiteOptions
{
    int warehouses = 4;
    int districtsPerWarehouse = 10;
    int items = 8192;
    int customersPerDistrict = 64;
    double newOrderRatio = 0.5; // rest: payment
    int linesPerOrder = 10;
};

class TpccLiteWorkload : public TxWorkload
{
  public:
    using Options = TpccLiteOptions;

    explicit TpccLiteWorkload(Options opts = {});
    std::string name() const override { return "tpcc"; }
    void setup(polytm::PolyTm &poly, polytm::ThreadToken &token) override;
    void op(polytm::PolyTm &poly, polytm::ThreadToken &token,
            Rng &rng) override;
    bool consistent() const override;

  private:
    struct District
    {
        std::uint64_t nextOrderId;
        std::uint64_t ytd; // year-to-date payment total
    };

    Options opts_;
    TxArena arena_;
    RedBlackTreeTx orders_{arena_};
    std::vector<std::uint64_t> stock_;      //!< per item
    std::vector<District> districts_;       //!< w * d
    std::vector<std::uint64_t> customerBal_;//!< w * d * c
    std::vector<std::uint64_t> warehouseYtd_;
    std::uint64_t orderCount_ = 0;
};

/** memcached-style cache: tiny get/put/delete txs over a hash map. */
struct KvCacheOptions
{
    std::uint64_t keys = 1 << 16;
    double getRatio = 0.85;
    double putRatio = 0.10; // rest: delete
    double skew = 0.4;      // popular keys
};

class KvCacheWorkload : public TxWorkload
{
  public:
    using Options = KvCacheOptions;

    explicit KvCacheWorkload(Options opts = {});
    std::string name() const override { return "memcached"; }
    void setup(polytm::PolyTm &poly, polytm::ThreadToken &token) override;
    void op(polytm::PolyTm &poly, polytm::ThreadToken &token,
            Rng &rng) override;
    bool consistent() const override { return map_.invariantsHold(); }

  private:
    Options opts_;
    TxArena arena_;
    HashMapTx map_{arena_, 15};
};

/**
 * Labyrinth-style router: each transaction claims an L-shaped path of
 * grid cells between two random points, skipping routes whose cells
 * are taken. Transactions write hundreds of cells — the HTM-capacity
 * killer.
 */
struct GridRouterOptions
{
    int side = 256;         // side x side grid
    int maxAttemptsPerOp = 4;
};

class GridRouterWorkload : public TxWorkload
{
  public:
    using Options = GridRouterOptions;

    explicit GridRouterWorkload(Options opts = {});
    std::string name() const override { return "labyrinth"; }
    void setup(polytm::PolyTm &poly, polytm::ThreadToken &token) override;
    void op(polytm::PolyTm &poly, polytm::ThreadToken &token,
            Rng &rng) override;
    bool consistent() const override;

    std::uint64_t routedUnsafe() const { return routed_; }

  private:
    std::uint64_t *cell(int x, int y)
    {
        return &grid_[static_cast<std::size_t>(y) * opts_.side + x];
    }

    Options opts_;
    std::vector<std::uint64_t> grid_; //!< 0 = free, else route id
    std::uint64_t nextRouteId_ = 1;   //!< transactional counter
    std::uint64_t routed_ = 0;        //!< transactional counter
};

/**
 * Parametric synthetic kernel: each transaction reads `reads` and
 * writes `writes` random slots of a shared array; used by the
 * overhead table where per-access instrumentation cost must be
 * isolated from algorithmic effects.
 */
struct SyntheticOptions
{
    std::uint64_t arraySlots = 1 << 20;
    int reads = 20;
    int writes = 4;
    double skew = 0.0;
};

class SyntheticWorkload : public TxWorkload
{
  public:
    using Options = SyntheticOptions;

    explicit SyntheticWorkload(Options opts = {});
    std::string name() const override { return "synthetic"; }
    void setup(polytm::PolyTm &poly, polytm::ThreadToken &token) override;
    void op(polytm::PolyTm &poly, polytm::ThreadToken &token,
            Rng &rng) override;

  private:
    Options opts_;
    std::vector<std::uint64_t> slots_;
};

} // namespace proteus::workloads

#endif // PROTEUS_WORKLOADS_APP_WORKLOADS_HPP
