#include "workloads/runner.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include "common/timing.hpp"

namespace proteus::workloads {

using polytm::PolyStats;
using polytm::PolyTm;

void
setupWorkload(PolyTm &poly, TxWorkload &workload)
{
    auto token = poly.registerThread();
    // The setup thread may exceed the configured parallelism degree;
    // pin it so it can run regardless, then undo.
    poly.setPinned(token.tid, true);
    workload.setup(poly, token);
    poly.setPinned(token.tid, false);
    poly.deregisterThread(token);
}

namespace {

RunResult
runInternal(PolyTm &poly, TxWorkload &workload, int threads,
            double seconds, std::uint64_t ops_per_thread,
            std::uint64_t seed_base)
{
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> total_ops{0};
    const PolyStats before = poly.snapshotStats();

    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    Stopwatch sw;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            auto token = poly.registerThread();
            Rng rng(seed_base + static_cast<std::uint64_t>(t) * 7919);
            std::uint64_t done = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                workload.op(poly, token, rng);
                ++done;
                if (ops_per_thread && done >= ops_per_thread)
                    break;
            }
            total_ops.fetch_add(done);
            poly.deregisterThread(token);
        });
    }

    if (ops_per_thread == 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(seconds));
        stop.store(true);
        // Wake threads parked by a low parallelism degree so they can
        // observe the stop flag.
        poly.resumeAllForShutdown();
    }
    for (auto &w : workers)
        w.join();

    RunResult result;
    result.seconds = sw.elapsedSeconds();
    result.ops = total_ops.load();
    result.opsPerSec = result.ops / result.seconds;
    const PolyStats after = poly.snapshotStats();
    result.commits = after.commits - before.commits;
    result.aborts = after.aborts - before.aborts;
    return result;
}

} // namespace

RunResult
runTimed(PolyTm &poly, TxWorkload &workload, int threads, double seconds,
         std::uint64_t seed_base)
{
    return runInternal(poly, workload, threads, seconds, 0, seed_base);
}

RunResult
runOps(PolyTm &poly, TxWorkload &workload, int threads,
       std::uint64_t ops_per_thread, std::uint64_t seed_base)
{
    return runInternal(poly, workload, threads, 0.0, ops_per_thread,
                       seed_base);
}

} // namespace proteus::workloads
