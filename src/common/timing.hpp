/**
 * @file
 * Wall-clock timing helpers used by overhead / latency measurements.
 */

#ifndef PROTEUS_COMMON_TIMING_HPP
#define PROTEUS_COMMON_TIMING_HPP

#include <chrono>
#include <cstdint>

namespace proteus {

/** Monotonic nanoseconds since an arbitrary epoch. */
std::uint64_t nowNanos();

/** Simple scoped stopwatch. */
class Stopwatch
{
  public:
    Stopwatch() : start_(nowNanos()) {}

    /** Nanoseconds elapsed since construction or last reset. */
    std::uint64_t elapsedNanos() const { return nowNanos() - start_; }

    /** Seconds elapsed (double). */
    double elapsedSeconds() const
    {
        return static_cast<double>(elapsedNanos()) * 1e-9;
    }

    void reset() { start_ = nowNanos(); }

  private:
    std::uint64_t start_;
};

} // namespace proteus

#endif // PROTEUS_COMMON_TIMING_HPP
