#include "common/rng.hpp"

#include <cassert>
#include <cmath>

namespace proteus {

namespace {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitMix64(sm);
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    assert(bound > 0);
    // Rejection-free Lemire reduction is overkill here; modulo bias is
    // negligible for simulation bounds << 2^64.
    return nextU64() % bound;
}

double
Rng::nextDouble()
{
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Rng::nextGaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    double u1 = 0.0;
    do {
        u1 = nextDouble();
    } while (u1 <= 1e-300);
    const double u2 = nextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedGaussian_ = r * std::sin(theta);
    hasCachedGaussian_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * nextGaussian();
}

bool
Rng::bernoulli(double p)
{
    return nextDouble() < p;
}

std::vector<std::size_t>
Rng::permutation(std::size_t n)
{
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i)
        perm[i] = i;
    for (std::size_t i = n; i > 1; --i) {
        const std::size_t j = nextBounded(i);
        std::swap(perm[i - 1], perm[j]);
    }
    return perm;
}

std::uint64_t
Rng::zipf(std::uint64_t n, double theta)
{
    assert(n > 0);
    // Approximate inverse-CDF sampling for a Zipf-like distribution;
    // accurate enough for workload skew modelling.
    const double alpha = 1.0 - theta;
    const double u = nextDouble();
    const double x = std::pow(u, 1.0 / alpha);
    auto idx = static_cast<std::uint64_t>(x * static_cast<double>(n));
    return idx >= n ? n - 1 : idx;
}

Rng
Rng::split()
{
    return Rng(nextU64() ^ 0xd1b54a32d192ed03ull);
}

} // namespace proteus
