/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the reproduction (workload generators,
 * CF training, SMBO, noise models) draws from SplitMix64/Xoshiro256**
 * seeded explicitly, so that every experiment is reproducible bit-for-bit
 * run-to-run.
 */

#ifndef PROTEUS_COMMON_RNG_HPP
#define PROTEUS_COMMON_RNG_HPP

#include <cstdint>
#include <vector>

namespace proteus {

/**
 * xoshiro256** PRNG with SplitMix64 seeding.
 *
 * Small, fast, and good enough statistically for simulation use; not
 * cryptographic. Header keeps only the interface; hot inline paths are
 * small enough to define here.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t nextU64();

    /** Uniform integer in [0, bound) ; bound must be > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Standard normal via Box-Muller (cached second value). */
    double nextGaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** True with probability p. */
    bool bernoulli(double p);

    /** Uniform index permutation of {0..n-1} (Fisher-Yates). */
    std::vector<std::size_t> permutation(std::size_t n);

    /** Zipf-distributed integer in [0, n) with skew theta in (0, 1]. */
    std::uint64_t zipf(std::uint64_t n, double theta);

    /** Fork an independent stream (used per-thread / per-component). */
    Rng split();

  private:
    std::uint64_t s_[4];
    double cachedGaussian_ = 0.0;
    bool hasCachedGaussian_ = false;
};

} // namespace proteus

#endif // PROTEUS_COMMON_RNG_HPP
