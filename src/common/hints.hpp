/**
 * @file
 * Branch-prediction and prefetch hints for hot probe loops.
 *
 * Thin, compiler-gated wrappers: hints are advisory only and compile
 * to nothing on toolchains without the builtins, so call sites stay
 * portable. Use sparingly — only on branches whose skew is structural
 * (e.g. "this slot carries no write intent" on the KV probe loop),
 * never on data-dependent guesses.
 */

#ifndef PROTEUS_COMMON_HINTS_HPP
#define PROTEUS_COMMON_HINTS_HPP

#if defined(__GNUC__) || defined(__clang__)
#define PROTEUS_LIKELY(x) __builtin_expect(!!(x), 1)
#define PROTEUS_UNLIKELY(x) __builtin_expect(!!(x), 0)
/** Read-prefetch with low temporal locality (probe walks stream). */
#define PROTEUS_PREFETCH(addr) __builtin_prefetch((addr), 0, 1)
#else
#define PROTEUS_LIKELY(x) (x)
#define PROTEUS_UNLIKELY(x) (x)
#define PROTEUS_PREFETCH(addr) ((void)0)
#endif

#endif // PROTEUS_COMMON_HINTS_HPP
