/**
 * @file
 * EpochDomain: quiescent-state-based reclamation for read paths.
 *
 * A domain owns one cache-line-padded slot per thread. A reader
 * *enters* a section by publishing the domain's current epoch into its
 * slot (and re-validating, so a concurrent reclaimer can never miss
 * it), and *exits* by clearing the slot. Retiring a resource costs
 * nothing epoch-wise: the owner just parks it on a reclaimer-visible
 * list (behind a lock or another synchronizing handoff). A reclaim
 * sweep stamps everything parked so far with one advance() — the
 * epoch fence — and recycles a stamped resource once minActive()
 * exceeds its tag, i.e. once every section that could have observed
 * it while it was still reachable has ended.
 *
 * The guarantee callers build on: a handle obtained *inside* a section
 * entered at epoch e — from any committed-current read — is retired at
 * some R >= e if it is ever retired at all (the retire must follow the
 * displacement that made the handle unreachable, which follows the
 * read, which follows the enter). While the section is open the slot
 * pins minActive() <= e <= R, so the handle's target is never
 * recycled underneath the reader. ProteusKV uses this to let pinned
 * blob readers skip the seqlock re-check entirely (value_arena.hpp).
 *
 * Sections must be short and never held across a blocking wait (enter
 * inside the transaction body, not around the retry loop): an open
 * section only *defers* recycling, so a stalled section grows the
 * limbo lists, never corrupts them. enter/exit are not reentrant per
 * slot.
 *
 * Memory-order sketch (why a reclaimer cannot miss a live reader):
 * enter() stores the slot and re-loads the epoch seq_cst; advance()
 * is a seq_cst RMW, so it reads the tail of the epoch's modification
 * order — its returned tag R is >= the entry epoch e of every section
 * opened before it. If the bump (to R+1 > e) were ordered before a
 * reader's re-load, that reader would have seen the newer epoch and
 * re-pinned past R (and can no longer reach anything tagged R);
 * otherwise the bump, and therefore the sweep's minActive() scan, is
 * ordered after the reader's slot store and must observe the pinned
 * e <= R.
 */

#ifndef PROTEUS_COMMON_EPOCH_HPP
#define PROTEUS_COMMON_EPOCH_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/cacheline.hpp"

namespace proteus {

/** One reader's published epoch; 0 = quiescent (not in a section). */
struct alignas(kCacheLineSize) EpochSlot
{
    std::atomic<std::uint64_t> active{0};
};

class EpochDomain
{
  public:
    explicit EpochDomain(std::size_t slot_count)
        : slotCount_(slot_count),
          slots_(std::make_unique<EpochSlot[]>(slot_count))
    {
        // Epoch 0 is reserved: a slot holding 0 reads as quiescent.
        epoch_->store(1, std::memory_order_relaxed);
    }

    EpochDomain(const EpochDomain &) = delete;
    EpochDomain &operator=(const EpochDomain &) = delete;

    /** Hand out slot `i`, widening the minActive() scan to cover it.
     *  Callers map threads to distinct slot indices (e.g. dense TM
     *  tids); claiming is idempotent. */
    EpochSlot *
    claimSlot(std::size_t i)
    {
        std::uint64_t seen =
            watermark_->load(std::memory_order_relaxed);
        while (seen < i + 1 &&
               !watermark_->compare_exchange_weak(
                   seen, i + 1, std::memory_order_acq_rel,
                   std::memory_order_relaxed)) {
        }
        return &slots_[i];
    }

    /** Open a section; returns the entry epoch. */
    std::uint64_t
    enter(EpochSlot &slot)
    {
        std::uint64_t e = epoch_->load(std::memory_order_relaxed);
        for (;;) {
            slot.active.store(e, std::memory_order_seq_cst);
            const std::uint64_t cur =
                epoch_->load(std::memory_order_seq_cst);
            if (cur == e)
                return e;
            e = cur; // a retire raced the publish; re-pin at its epoch
        }
    }

    static void
    exit(EpochSlot &slot)
    {
        slot.active.store(0, std::memory_order_release);
    }

    /**
     * Reclaim-sweep fence: bumps the epoch and returns the pre-bump
     * value. Every resource that was *handed to the reclaimer before
     * this call* (through a synchronizing channel — e.g. pushed under
     * the limbo lock the sweeper then takes) may be tagged with the
     * returned value and recycled once minActive() > tag: any section
     * that could hold such a resource entered at an epoch <= tag (its
     * entry epoch was in the modification order this RMW reads the
     * tail of), and sections entered after the bump observe an epoch
     * > tag, so they can no longer reach it. One RMW amortizes over
     * the whole batch — the retire hot path itself touches no shared
     * epoch state.
     */
    std::uint64_t
    advance()
    {
        return epoch_->fetch_add(1, std::memory_order_seq_cst);
    }

    /** Oldest epoch pinned by an open section (max value if none).
     *  Scans only the claimed-slot prefix. */
    std::uint64_t
    minActive() const
    {
        std::uint64_t min = ~std::uint64_t{0};
        const std::uint64_t used =
            watermark_->load(std::memory_order_acquire);
        for (std::size_t i = 0; i < used; ++i) {
            const std::uint64_t v =
                slots_[i].active.load(std::memory_order_seq_cst);
            if (v != 0 && v < min)
                min = v;
        }
        return min;
    }

    std::uint64_t
    current() const
    {
        return epoch_->load(std::memory_order_acquire);
    }

  private:
    std::size_t slotCount_;
    std::unique_ptr<EpochSlot[]> slots_;
    /** Starts at 1 so slot value 0 can mean "quiescent". */
    Padded<std::atomic<std::uint64_t>> epoch_;
    /** One past the highest slot index ever claimed. */
    Padded<std::atomic<std::uint64_t>> watermark_;
};

/** RAII section over one slot. Not reentrant per slot. */
class EpochPin
{
  public:
    EpochPin(EpochDomain &domain, EpochSlot &slot) : slot_(&slot)
    {
        epoch_ = domain.enter(slot);
    }
    ~EpochPin() { EpochDomain::exit(*slot_); }

    EpochPin(const EpochPin &) = delete;
    EpochPin &operator=(const EpochPin &) = delete;

    std::uint64_t epoch() const { return epoch_; }

  private:
    EpochSlot *slot_;
    std::uint64_t epoch_ = 0;
};

} // namespace proteus

#endif // PROTEUS_COMMON_EPOCH_HPP
