/**
 * @file
 * Deterministic fault injection: named FaultPoints compiled into
 * production code paths.
 *
 * A call site declares a static FaultPoint and asks it before (or
 * instead of) a fallible syscall:
 *
 *     static fault::FaultPoint fp("wal.fsync");
 *     if (int e = fp.fire()) { errno = e; rc = -1; }
 *     else                   rc = ::fdatasync(fd);
 *
 * Disarmed points cost exactly one relaxed atomic load and one
 * predictable branch — cheap enough to leave in release builds (the
 * read-heavy bench's obs_overhead_pct gate holds with the harness
 * compiled in). Armed points take a mutex on the slow path only.
 *
 * Triggers are deterministic and seeded so a failing chaos-hunter
 * iteration can be replayed exactly:
 *   - nth-hit: fire on the nth evaluation after arming, then disarm;
 *   - one-shot: fire on the next evaluation, then disarm;
 *   - probability: fire with probability p per evaluation, driven by
 *     a private seeded xorshift stream (optionally one-shot).
 *
 * Arming is either programmatic (tests: fault::arm("wal.fsync",
 * spec)) or environment-driven for whole-process chaos runs:
 *
 *     PROTEUS_FAULT="wal.fsync:nth=3:err=EIO;ckpt.rename:once"
 *
 * Entries are ';' or ',' separated; within an entry the first ':'
 * field is the point name and the rest are key=value settings:
 * p=<float>, nth=<n>, once, sticky (repeat-fire probability),
 * err=<EIO|ENOSPC|EDQUOT|EINTR|EAGAIN|number>, seed=<n>, arg=<n>.
 * Points register lazily (first execution of their call site), so
 * arming by name is order-independent: a spec for a not-yet-seen
 * point is held pending and applied at registration.
 */

#ifndef PROTEUS_COMMON_FAULT_HPP
#define PROTEUS_COMMON_FAULT_HPP

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace proteus::fault {

struct FaultSpec {
    enum class Trigger : std::uint8_t {
        kOff = 0,
        kProbability, ///< fire with `probability` per evaluation
        kNth,         ///< fire on the nth (1-based) evaluation
        kOnce,        ///< fire on the next evaluation
    };

    Trigger trigger = Trigger::kOff;
    double probability = 0.0;
    std::uint64_t nth = 1;
    /** Disarm after the first fire. Forced for kNth/kOnce; optional
     *  for kProbability ("sticky" keeps firing). */
    bool oneShot = true;
    /** errno delivered to the call site when the point fires. */
    int err = 5; // EIO
    /** Point-specific argument (e.g. wal.append.short_write's byte
     *  cap — how much of the frame really reaches the fd). */
    std::uint64_t arg = 0;
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;
};

class FaultPoint {
  public:
    /** Registers the point under `name` (must be a string literal or
     *  otherwise outlive the point) and applies any pending spec. */
    explicit FaultPoint(const char *name);

    FaultPoint(const FaultPoint &) = delete;
    FaultPoint &operator=(const FaultPoint &) = delete;

    /** Returns 0 (proceed) or the errno to simulate. Disarmed cost:
     *  one relaxed load + branch. */
    int
    fire() noexcept
    {
        if (!armed_.load(std::memory_order_relaxed)) [[likely]]
            return 0;
        return fireSlow();
    }

    const char *name() const { return name_; }
    /** The armed spec's `arg` (0 when disarmed / unset). */
    std::uint64_t
    arg() const
    {
        return arg_.load(std::memory_order_relaxed);
    }
    /** Times this point fired since process start. */
    std::uint64_t
    fires() const
    {
        return fires_.load(std::memory_order_relaxed);
    }

    void arm(const FaultSpec &spec);
    void disarm();

  private:
    friend class Registry;

    int fireSlow() noexcept;

    const char *name_;
    std::atomic<bool> armed_{false};
    std::atomic<std::uint64_t> fires_{0};
    std::atomic<std::uint64_t> arg_{0};
    mutable std::mutex mu_; ///< armed slow path + spec swaps only
    FaultSpec spec_{};
    std::uint64_t hits_ = 0; ///< evaluations since arm
    std::uint64_t rng_ = 0;  ///< xorshift state (probability trigger)
    FaultPoint *next_ = nullptr; ///< registry intrusive list
};

/**
 * Arm `name` now if the point is registered, else hold the spec
 * pending and apply it when the point's call site first executes.
 * Returns true when the point was already registered.
 */
bool arm(const std::string &name, const FaultSpec &spec);

/** Disarm one point (and drop any pending spec under that name). */
void disarm(const std::string &name);

/** Disarm every registered point and drop all pending specs. Call in
 *  test teardown — points are process-global. */
void disarmAll();

/** nullptr when no call site has registered the name yet. */
FaultPoint *find(const std::string &name);

/** Total fires of `name` (0 when unregistered). */
std::uint64_t firesOf(const std::string &name);

/**
 * One line per armed or pending point ("name trigger=nth:3 err=5
 * seed=... fires=1"), for persisting a chaos iteration's fault
 * schedule next to its WAL directory.
 */
std::string describeArmed();

/** Parse PROTEUS_FAULT (see file comment). Runs automatically before
 *  the first registration; safe to call again (idempotent). */
void armFromEnv();

} // namespace proteus::fault

#endif // PROTEUS_COMMON_FAULT_HPP
