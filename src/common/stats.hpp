/**
 * @file
 * Summary statistics used across the evaluation harnesses.
 *
 * MAPE / MDFO / percentile / CDF computations are shared between the
 * RecTM trace-driven experiments (Figs. 4-7) and the closed-loop
 * experiments (Fig. 8, Table 6), so they live here once.
 */

#ifndef PROTEUS_COMMON_STATS_HPP
#define PROTEUS_COMMON_STATS_HPP

#include <cstddef>
#include <utility>
#include <vector>

namespace proteus {

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &xs);

/** Population variance; 0 for fewer than 2 samples. */
double variance(const std::vector<double> &xs);

/** Standard deviation (population). */
double stddev(const std::vector<double> &xs);

/** Median (linear-interpolated). */
double median(std::vector<double> xs);

/**
 * p-th percentile with linear interpolation, p in [0, 100].
 * Sorts a copy; callers on hot paths should pre-sort and use
 * percentileSorted.
 */
double percentile(std::vector<double> xs, double p);

/** Percentile over an already ascending-sorted vector. */
double percentileSorted(const std::vector<double> &sorted, double p);

/**
 * Index of dispersion var/mean, the objective minimized by rating
 * distillation (Algorithm 3 of the paper). Returns +inf for mean == 0.
 */
double indexOfDispersion(const std::vector<double> &xs);

/**
 * Empirical CDF of xs evaluated at the given points: fraction of
 * samples <= point, one output per input point.
 */
std::vector<double> empiricalCdf(std::vector<double> xs,
                                 const std::vector<double> &points);

/**
 * Online mean/variance accumulator (Welford) with a bounded window —
 * building block for the Monitor's adaptive CUSUM.
 */
class RunningStats
{
  public:
    void push(double x);
    void clear();

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const { return n_ > 1 ? m2_ / n_ : 0.0; }
    double stddev() const;

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

} // namespace proteus

#endif // PROTEUS_COMMON_STATS_HPP
