#include "common/timing.hpp"

namespace proteus {

std::uint64_t
nowNanos()
{
    const auto tp = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(tp).count());
}

} // namespace proteus
