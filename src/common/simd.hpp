/**
 * @file
 * 16-lane byte matching over register data — the probe filter's only
 * SIMD dependency.
 *
 * The KV probe loop (see kvstore/shard.cpp) reads two 64-bit control
 * words through the TM layer and needs "which of these 16 bytes equal
 * X" / "which have the high bit set" as a lane bitmask. Both
 * primitives take the words BY VALUE: matching runs on register data
 * the caller already owns, so the SIMD layer performs no memory loads
 * of its own — no unaligned access, no racy wide reads, nothing for
 * TSan to see.
 *
 * Dispatch is compile-time: SSE2 when the target has it (baseline on
 * x86-64), a portable per-byte fallback otherwise or when
 * PROTEUS_FORCE_SCALAR_PROBE is defined (the CI scalar-fallback build).
 * Both paths are always compiled and unit-tested against each other.
 *
 * Lane numbering: lane i (0..7) is byte i of `lo` (little-endian byte
 * order, i.e. bits [8i, 8i+8)), lane 8+i is byte i of `hi`.
 */

#ifndef PROTEUS_COMMON_SIMD_HPP
#define PROTEUS_COMMON_SIMD_HPP

#include <atomic>
#include <cstdint>

#if defined(__SSE2__) && !defined(PROTEUS_FORCE_SCALAR_PROBE)
#include <emmintrin.h>
#define PROTEUS_SIMD_SSE2 1
#else
#define PROTEUS_SIMD_SSE2 0
#endif

namespace proteus::simd {

/** Portable path: lane mask of bytes equal to `byte`. */
inline std::uint32_t
matchByte16Scalar(std::uint64_t lo, std::uint64_t hi,
                  std::uint8_t byte)
{
    std::uint32_t mask = 0;
    for (unsigned i = 0; i < 8; ++i) {
        mask |= static_cast<std::uint32_t>(
                    ((lo >> (8 * i)) & 0xff) == byte)
                << i;
        mask |= static_cast<std::uint32_t>(
                    ((hi >> (8 * i)) & 0xff) == byte)
                << (8 + i);
    }
    return mask;
}

/** Portable path: lane mask of bytes with bit 7 set. */
inline std::uint32_t
matchHighBit16Scalar(std::uint64_t lo, std::uint64_t hi)
{
    std::uint32_t mask = 0;
    for (unsigned i = 0; i < 8; ++i) {
        mask |= static_cast<std::uint32_t>((lo >> (8 * i + 7)) & 1)
                << i;
        mask |= static_cast<std::uint32_t>((hi >> (8 * i + 7)) & 1)
                << (8 + i);
    }
    return mask;
}

#if PROTEUS_SIMD_SSE2

inline std::uint32_t
matchByte16Sse2(std::uint64_t lo, std::uint64_t hi, std::uint8_t byte)
{
    const __m128i group = _mm_set_epi64x(
        static_cast<long long>(hi), static_cast<long long>(lo));
    const __m128i needle = _mm_set1_epi8(static_cast<char>(byte));
    return static_cast<std::uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(group, needle)));
}

inline std::uint32_t
matchHighBit16Sse2(std::uint64_t lo, std::uint64_t hi)
{
    const __m128i group = _mm_set_epi64x(
        static_cast<long long>(hi), static_cast<long long>(lo));
    return static_cast<std::uint32_t>(_mm_movemask_epi8(group));
}

#endif // PROTEUS_SIMD_SSE2

/** Lane mask (bit i = lane i) of the 16 bytes in (hi:lo) equal to
 *  `byte`. */
inline std::uint32_t
matchByte16(std::uint64_t lo, std::uint64_t hi, std::uint8_t byte)
{
#if PROTEUS_SIMD_SSE2
    return matchByte16Sse2(lo, hi, byte);
#else
    return matchByte16Scalar(lo, hi, byte);
#endif
}

/** Lane mask of the 16 bytes in (hi:lo) whose bit 7 is set. */
inline std::uint32_t
matchHighBit16(std::uint64_t lo, std::uint64_t hi)
{
#if PROTEUS_SIMD_SSE2
    return matchHighBit16Sse2(lo, hi);
#else
    return matchHighBit16Scalar(lo, hi);
#endif
}

/**
 * Runtime probe A/B switch (bench only): when set, Shard::probe takes
 * its legacy slot-at-a-time walk instead of the group-filtered one, so
 * bench_kvstore --probe-ab can interleave both on the same live store.
 * One relaxed load per probe; defaults off.
 */
inline std::atomic<int> g_forceScalarProbe{0};

inline void
setForceScalarProbe(bool on)
{
    g_forceScalarProbe.store(on ? 1 : 0, std::memory_order_relaxed);
}

inline bool
forceScalarProbe()
{
    return g_forceScalarProbe.load(std::memory_order_relaxed) != 0;
}

} // namespace proteus::simd

#endif // PROTEUS_COMMON_SIMD_HPP
