#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace proteus {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
variance(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return acc / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    return std::sqrt(variance(xs));
}

double
percentileSorted(const std::vector<double> &sorted, double p)
{
    assert(!sorted.empty());
    assert(p >= 0.0 && p <= 100.0);
    if (sorted.size() == 1)
        return sorted.front();
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
percentile(std::vector<double> xs, double p)
{
    assert(!xs.empty());
    std::sort(xs.begin(), xs.end());
    return percentileSorted(xs, p);
}

double
median(std::vector<double> xs)
{
    return percentile(std::move(xs), 50.0);
}

double
indexOfDispersion(const std::vector<double> &xs)
{
    const double m = mean(xs);
    if (m == 0.0)
        return std::numeric_limits<double>::infinity();
    return variance(xs) / m;
}

std::vector<double>
empiricalCdf(std::vector<double> xs, const std::vector<double> &points)
{
    std::sort(xs.begin(), xs.end());
    std::vector<double> out;
    out.reserve(points.size());
    for (double p : points) {
        const auto it = std::upper_bound(xs.begin(), xs.end(), p);
        out.push_back(static_cast<double>(it - xs.begin()) /
                      static_cast<double>(xs.size()));
    }
    return out;
}

void
RunningStats::push(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::clear()
{
    n_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

} // namespace proteus
