#include "common/fault.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

namespace proteus::fault {

/**
 * Process-global point registry. Points are static objects inside
 * translation units; they register here from their constructors (any
 * thread, any time), and tests arm by name possibly before the
 * owning call site has ever executed — hence the pending-spec map.
 *
 * Leaked singleton: FaultPoints are function-local statics whose
 * destruction order against this registry is undefined, so the
 * registry must outlive them all. Lives outside the anonymous
 * namespace so FaultPoint's friend declaration reaches it.
 */
class Registry {
  public:
    static Registry &
    instance()
    {
        static Registry *r = new Registry();
        return *r;
    }

    void
    add(FaultPoint *p)
    {
        std::lock_guard<std::mutex> lk(mu_);
        p->next_ = head_;
        head_ = p;
        auto it = pending_.find(p->name_);
        if (it != pending_.end()) {
            p->arm(it->second);
            pending_.erase(it);
        }
    }

    bool
    arm(const std::string &name, const FaultSpec &spec)
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (FaultPoint *p = findLocked(name)) {
            p->arm(spec);
            return true;
        }
        pending_[name] = spec;
        return false;
    }

    void
    disarm(const std::string &name)
    {
        std::lock_guard<std::mutex> lk(mu_);
        pending_.erase(name);
        if (FaultPoint *p = findLocked(name))
            p->disarm();
    }

    void
    disarmAll()
    {
        std::lock_guard<std::mutex> lk(mu_);
        pending_.clear();
        for (FaultPoint *p = head_; p; p = p->next_)
            p->disarm();
    }

    FaultPoint *
    find(const std::string &name)
    {
        std::lock_guard<std::mutex> lk(mu_);
        return findLocked(name);
    }

    std::string
    describeArmed()
    {
        std::lock_guard<std::mutex> lk(mu_);
        std::ostringstream out;
        for (FaultPoint *p = head_; p; p = p->next_) {
            FaultSpec spec;
            {
                std::lock_guard<std::mutex> plk(p->mu_);
                spec = p->spec_;
            }
            const std::uint64_t fired =
                p->fires_.load(std::memory_order_relaxed);
            if (spec.trigger == FaultSpec::Trigger::kOff && fired == 0)
                continue;
            out << p->name_ << ' ' << describeSpec(spec)
                << " fires=" << fired << '\n';
        }
        for (const auto &[name, spec] : pending_)
            out << name << ' ' << describeSpec(spec) << " pending\n";
        return out.str();
    }

  private:
    Registry() = default;

    FaultPoint *
    findLocked(const std::string &name)
    {
        for (FaultPoint *p = head_; p; p = p->next_)
            if (name == p->name_)
                return p;
        return nullptr;
    }

    static std::string
    describeSpec(const FaultSpec &s)
    {
        std::ostringstream out;
        switch (s.trigger) {
        case FaultSpec::Trigger::kOff:
            out << "off";
            break;
        case FaultSpec::Trigger::kProbability:
            out << "p=" << s.probability << (s.oneShot ? ":once" : ":sticky")
                << ":seed=" << s.seed;
            break;
        case FaultSpec::Trigger::kNth:
            out << "nth=" << s.nth;
            break;
        case FaultSpec::Trigger::kOnce:
            out << "once";
            break;
        }
        out << ":err=" << s.err;
        if (s.arg != 0)
            out << ":arg=" << s.arg;
        return out.str();
    }

    std::mutex mu_;
    FaultPoint *head_ = nullptr;
    std::map<std::string, FaultSpec> pending_;
};

namespace {

int
parseErrno(const std::string &tok)
{
    if (tok == "EIO")
        return EIO;
    if (tok == "ENOSPC")
        return ENOSPC;
    if (tok == "EDQUOT")
        return EDQUOT;
    if (tok == "EINTR")
        return EINTR;
    if (tok == "EAGAIN")
        return EAGAIN;
    return std::atoi(tok.c_str());
}

/** Parse one "name:key=value:..." entry; returns false on syntax the
 *  parser can't make sense of (entry is skipped with a warning). */
bool
parseEntry(const std::string &entry, std::string *name, FaultSpec *spec)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (start <= entry.size()) {
        std::size_t colon = entry.find(':', start);
        if (colon == std::string::npos)
            colon = entry.size();
        fields.push_back(entry.substr(start, colon - start));
        start = colon + 1;
    }
    if (fields.empty() || fields[0].empty())
        return false;
    *name = fields[0];
    *spec = FaultSpec{};
    spec->trigger = FaultSpec::Trigger::kOnce;
    for (std::size_t i = 1; i < fields.size(); ++i) {
        const std::string &f = fields[i];
        if (f == "once") {
            spec->trigger = FaultSpec::Trigger::kOnce;
        } else if (f == "sticky") {
            spec->oneShot = false;
        } else if (f.rfind("p=", 0) == 0) {
            spec->trigger = FaultSpec::Trigger::kProbability;
            spec->probability = std::atof(f.c_str() + 2);
        } else if (f.rfind("nth=", 0) == 0) {
            spec->trigger = FaultSpec::Trigger::kNth;
            spec->nth = std::strtoull(f.c_str() + 4, nullptr, 10);
        } else if (f.rfind("err=", 0) == 0) {
            spec->err = parseErrno(f.substr(4));
        } else if (f.rfind("seed=", 0) == 0) {
            spec->seed = std::strtoull(f.c_str() + 5, nullptr, 10);
        } else if (f.rfind("arg=", 0) == 0) {
            spec->arg = std::strtoull(f.c_str() + 4, nullptr, 10);
        } else if (!f.empty()) {
            return false;
        }
    }
    return spec->err != 0 &&
           (spec->trigger != FaultSpec::Trigger::kNth || spec->nth > 0);
}

} // namespace

FaultPoint::FaultPoint(const char *name) : name_(name)
{
    armFromEnv();
    Registry::instance().add(this);
}

void
FaultPoint::arm(const FaultSpec &spec)
{
    std::lock_guard<std::mutex> lk(mu_);
    spec_ = spec;
    if (spec_.trigger != FaultSpec::Trigger::kProbability)
        spec_.oneShot = true;
    hits_ = 0;
    rng_ = spec.seed ? spec.seed : 0x9e3779b97f4a7c15ull;
    arg_.store(spec.arg, std::memory_order_relaxed);
    armed_.store(spec.trigger != FaultSpec::Trigger::kOff,
                 std::memory_order_relaxed);
}

void
FaultPoint::disarm()
{
    std::lock_guard<std::mutex> lk(mu_);
    armed_.store(false, std::memory_order_relaxed);
    spec_ = FaultSpec{};
    arg_.store(0, std::memory_order_relaxed);
}

int
FaultPoint::fireSlow() noexcept
{
    std::lock_guard<std::mutex> lk(mu_);
    if (!armed_.load(std::memory_order_relaxed))
        return 0; // raced a disarm
    ++hits_;
    bool fire = false;
    switch (spec_.trigger) {
    case FaultSpec::Trigger::kOff:
        break;
    case FaultSpec::Trigger::kProbability: {
        rng_ ^= rng_ << 13;
        rng_ ^= rng_ >> 7;
        rng_ ^= rng_ << 17;
        const double u01 =
            static_cast<double>(rng_ >> 11) * 0x1.0p-53; // [0,1)
        fire = u01 < spec_.probability;
        break;
    }
    case FaultSpec::Trigger::kNth:
        fire = hits_ == spec_.nth;
        break;
    case FaultSpec::Trigger::kOnce:
        fire = true;
        break;
    }
    if (!fire)
        return 0;
    fires_.fetch_add(1, std::memory_order_relaxed);
    if (spec_.oneShot)
        armed_.store(false, std::memory_order_relaxed);
    return spec_.err;
}

bool
arm(const std::string &name, const FaultSpec &spec)
{
    return Registry::instance().arm(name, spec);
}

void
disarm(const std::string &name)
{
    Registry::instance().disarm(name);
}

void
disarmAll()
{
    Registry::instance().disarmAll();
}

FaultPoint *
find(const std::string &name)
{
    return Registry::instance().find(name);
}

std::uint64_t
firesOf(const std::string &name)
{
    FaultPoint *p = Registry::instance().find(name);
    return p ? p->fires() : 0;
}

std::string
describeArmed()
{
    return Registry::instance().describeArmed();
}

void
armFromEnv()
{
    static std::once_flag once;
    std::call_once(once, [] {
        const char *env = std::getenv("PROTEUS_FAULT");
        if (!env || !*env)
            return;
        const std::string all(env);
        std::size_t start = 0;
        while (start <= all.size()) {
            std::size_t sep = all.find_first_of(";,", start);
            if (sep == std::string::npos)
                sep = all.size();
            const std::string entry = all.substr(start, sep - start);
            start = sep + 1;
            if (entry.empty())
                continue;
            std::string name;
            FaultSpec spec;
            if (parseEntry(entry, &name, &spec)) {
                Registry::instance().arm(name, spec);
            } else {
                std::fprintf(stderr,
                             "proteus: ignoring malformed PROTEUS_FAULT "
                             "entry \"%s\"\n",
                             entry.c_str());
            }
        }
    });
}

} // namespace proteus::fault
