/**
 * @file
 * Cache-line sized padding helpers.
 *
 * TM metadata that is written by many threads (orecs, thread gates,
 * per-thread counters) must live on private cache lines to avoid false
 * sharing; every hot shared word in this codebase goes through one of
 * these wrappers.
 */

#ifndef PROTEUS_COMMON_CACHELINE_HPP
#define PROTEUS_COMMON_CACHELINE_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace proteus {

/** Size (bytes) assumed for one cache line on the target machines. */
constexpr std::size_t kCacheLineSize = 64;

/**
 * A value of type T alone on its own cache line.
 *
 * Usable for plain values and for std::atomic<T>; the alignas both
 * aligns and pads the wrapper to a full line.
 */
template <typename T>
struct alignas(kCacheLineSize) Padded
{
    T value{};

    Padded() = default;
    explicit Padded(const T &v) : value(v) {}

    T &operator*() { return value; }
    const T &operator*() const { return value; }
    T *operator->() { return &value; }
    const T *operator->() const { return &value; }
};

/** Cache-line padded atomic 64-bit counter. */
using PaddedAtomicU64 = Padded<std::atomic<std::uint64_t>>;

static_assert(sizeof(Padded<std::uint64_t>) == kCacheLineSize);
static_assert(sizeof(PaddedAtomicU64) == kCacheLineSize);

} // namespace proteus

#endif // PROTEUS_COMMON_CACHELINE_HPP
