/**
 * @file
 * Machine models for the analytical TM performance simulator.
 *
 * This box has one core; the paper's evaluation needs an 8-hyperthread
 * Haswell with TSX+RAPL (Machine A) and a 4-socket 48-core Opteron
 * (Machine B). MachineModel captures exactly the architectural
 * parameters the TM performance shapes depend on: core/SMT/socket
 * topology, HTM capacity, NUMA penalty and the power envelope.
 */

#ifndef PROTEUS_SIMARCH_MACHINE_HPP
#define PROTEUS_SIMARCH_MACHINE_HPP

#include <algorithm>
#include <string>

#include "polytm/kpi.hpp"

namespace proteus::simarch {

struct MachineModel
{
    std::string name;

    int sockets = 1;
    int coresPerSocket = 4;
    int smtPerCore = 2;
    double clockGhz = 3.5;

    bool hasHtm = true;
    bool hasRapl = true;

    /** Emulated HTM capacity (cache lines). */
    double htmReadCapacityLines = 4096;
    double htmWriteCapacityLines = 448;

    /**
     * Multiplier applied to coherence-bound costs (conflict handling,
     * shared-clock ticks, commit serialization) once threads span more
     * than one socket.
     */
    double numaFactor = 1.0;

    /** Relative throughput of the second SMT context on a core. */
    double smtYield = 0.35;

    polytm::PowerModel power{};

    int physicalCores() const { return sockets * coresPerSocket; }
    int maxThreads() const { return physicalCores() * smtPerCore; }

    /**
     * Effective parallel capacity of n threads: physical cores count
     * fully, SMT contexts contribute smtYield.
     */
    double
    effectiveCores(int n) const
    {
        const int phys = std::min(n, physicalCores());
        const int smt = std::max(0, n - physicalCores());
        return phys + smtYield * smt;
    }

    /** Number of sockets n threads spread across (dense placement). */
    int
    socketsSpanned(int n) const
    {
        const int per_socket = coresPerSocket * smtPerCore;
        return std::min(sockets, (n + per_socket - 1) / per_socket);
    }

    /**
     * Coherence cost multiplier at thread count n: 1 on one socket,
     * rising toward numaFactor as the placement spans all sockets.
     */
    double
    coherencePenalty(int n) const
    {
        const int span = socketsSpanned(n);
        if (span <= 1 || sockets <= 1)
            return 1.0;
        const double frac =
            static_cast<double>(span - 1) / static_cast<double>(sockets - 1);
        return 1.0 + (numaFactor - 1.0) * frac;
    }

    /** The paper's Machine A: 1x Haswell Xeon E3-1275, 4c/8t, TSX. */
    static MachineModel machineA();

    /** The paper's Machine B: 4x AMD Opteron 6172, 48 cores, no HTM. */
    static MachineModel machineB();
};

} // namespace proteus::simarch

#endif // PROTEUS_SIMARCH_MACHINE_HPP
