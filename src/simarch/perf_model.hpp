/**
 * @file
 * Analytical TM performance model (the many-core testbed substitute).
 *
 * Maps (workload features, TM configuration) -> KPI on a MachineModel.
 * The model is intentionally *qualitative*: it reproduces the shapes
 * the paper's evaluation rests on —
 *  - STMs pay per-access instrumentation, HTM does not (dual paths);
 *  - NOrec serializes writer commits (wins small, collapses large);
 *  - TL2/TinySTM/SwissTM scale but pay validation and clock traffic;
 *  - best-effort HTM dies on capacity and falls back to a global lock,
 *    governed by the retry budget and the capacity policy;
 *  - cross-socket (Machine B) coherence multiplies conflict costs;
 *  - EDP optima sit at lower thread counts than throughput optima.
 *
 * Absolute numbers are not calibrated to the authors' testbed
 * (DESIGN.md §2 and §7).
 */

#ifndef PROTEUS_SIMARCH_PERF_MODEL_HPP
#define PROTEUS_SIMARCH_PERF_MODEL_HPP

#include <vector>

#include "polytm/config.hpp"
#include "polytm/kpi.hpp"
#include "simarch/machine.hpp"
#include "simarch/workload_model.hpp"

namespace proteus::simarch {

/** Per-backend cost profile (cycles), see perf_model.cpp for values. */
struct BackendCosts
{
    double beginCost = 30;
    double perRead = 15;
    double perWrite = 15;
    double commitBase = 80;
    double commitPerWrite = 12;
    double commitPerReadValidate = 4;
    /** Writer commits serialize on one global word (NOrec). */
    bool commitSerialized = false;
    /** The whole transaction serializes (global lock). */
    bool wholeTxSerialized = false;
    /** Conflicts detected at encounter time (less wasted work). */
    bool eagerConflicts = false;
    /** Sensitivity of conflict rate (NOrec's value revalidation makes
     *  it more writer-sensitive; eager locking slightly less). */
    double conflictSensitivity = 1.0;
};

class PerfModel
{
  public:
    /**
     * @param machine      simulated machine
     * @param noise_sigma  lognormal measurement-noise sigma
     * @param seed         noise stream seed
     */
    explicit PerfModel(MachineModel machine, double noise_sigma = 0.03,
                       std::uint64_t seed = 0xbeefcafe);

    const MachineModel &machine() const { return machine_; }

    /**
     * The target KPI for one (workload, configuration) pair.
     * Throughput is tx/s (maximize); exec-time is seconds for a fixed
     * batch (minimize); EDP is J*s for that batch (minimize).
     */
    double kpi(const Workload &workload, const polytm::TmConfig &config,
               polytm::KpiKind kind, bool noisy = true) const;

    /** One full Utility-Matrix row over a configuration space. */
    std::vector<double> kpiRow(const Workload &workload,
                               const polytm::ConfigSpace &space,
                               polytm::KpiKind kind,
                               bool noisy = true) const;

    /** Noise-free steady-state throughput (tx/s). */
    double throughputTps(const WorkloadFeatures &f,
                         const polytm::TmConfig &config) const;

    /** Transactions in the fixed batch used by time/EDP KPIs. */
    static constexpr double kBatchTxs = 1e6;

    /** Cost profile used for a backend (exposed for ablation benches). */
    static BackendCosts costsFor(tm::BackendKind kind);

  private:
    /** Deterministic noise factor for a (workload, config, kpi) key. */
    double noiseFactor(const Workload &workload,
                       const polytm::TmConfig &config,
                       polytm::KpiKind kind) const;

    MachineModel machine_;
    double noiseSigma_;
    std::uint64_t seed_;
};

} // namespace proteus::simarch

#endif // PROTEUS_SIMARCH_PERF_MODEL_HPP
