/**
 * @file
 * Workload descriptors for the analytical performance model.
 *
 * A WorkloadFeatures vector plays two roles:
 *  1. it drives PerfModel (what the simulated machine executes);
 *  2. its 17 entries are the workload-characterization features the
 *     ML baselines of Fig. 7 train on (Wang et al. use 17 features of
 *     the same nature: tx duration, access patterns, contention...).
 *
 * Presets cover the paper's 15 applications (Table 1): 8 STAMP
 * benchmarks, 4 data structures, STMBench7, TPC-C and Memcached.
 * WorkloadCorpus jitters the presets into the >300-workload population
 * used by the learning experiments (§6.3).
 */

#ifndef PROTEUS_SIMARCH_WORKLOAD_MODEL_HPP
#define PROTEUS_SIMARCH_WORKLOAD_MODEL_HPP

#include <array>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace proteus::simarch {

/** Number of characterization features (matches Wang et al.'s 17). */
constexpr std::size_t kNumFeatures = 17;

struct WorkloadFeatures
{
    double readsPerTx = 20;        //!< mean transactional reads
    double writesPerTx = 4;        //!< mean transactional writes
    double txLocalWorkCycles = 200;  //!< non-TM cycles inside a tx
    double nonTxWorkCycles = 100;    //!< cycles between transactions
    double updateTxFraction = 0.5; //!< fraction of txs that write
    double hotspotSkew = 0.2;      //!< zipf skew of data accesses [0,1)
    double workingSetLines = 1e5;  //!< distinct cache lines touched
    double txSizeCv = 0.3;         //!< coeff. of variation of tx size
    double conflictDensity = 1.0;  //!< overlap scale between txs
    double cacheLocality = 0.8;    //!< [0,1] fraction of near hits
    double pointerChaseDepth = 4;  //!< dependent-load chain length
    double rmwFraction = 0.7;      //!< writes preceded by a read
    double abortWasteFactor = 0.6; //!< tx work lost per abort [0,1]
    double irrevocableFraction = 0;//!< txs that must run fallback
    double memFootprintMb = 16;    //!< resident data size
    double threadImbalance = 0;    //!< [0,1] work skew across threads
    double burstiness = 0;         //!< [0,1] arrival irregularity

    /** Dense vector form (ML baselines, Fig. 7). */
    std::array<double, kNumFeatures> toVector() const;

    /** Feature names aligned with toVector(). */
    static const std::array<std::string, kNumFeatures> &featureNames();
};

/** A named workload: an application preset + parameter variation. */
struct Workload
{
    std::string name;
    WorkloadFeatures features;
};

/** The paper's 15 applications as feature presets. */
namespace presets {

Workload genome();     //!< STAMP: long mildly-conflicting txs
Workload intruder();   //!< STAMP: short txs, high contention
Workload kmeans();     //!< STAMP: tiny txs, low contention
Workload labyrinth();  //!< STAMP: huge txs (HTM-hostile)
Workload ssca2();      //!< STAMP: tiny txs, large working set
Workload vacation();   //!< STAMP: mid txs, moderate contention
Workload yada();       //!< STAMP: long txs, moderate contention
Workload bayes();      //!< STAMP: very long txs, high variance
Workload redBlackTree();
Workload skipList();
Workload linkedList(); //!< long read chains, high conflict density
Workload hashMap();    //!< short txs, near-zero conflicts
Workload stmbench7();  //!< large object graph, heterogeneous txs
Workload tpcc();       //!< OLTP: long update transactions
Workload memcached();  //!< very short cache get/put txs

/** All 15 presets in a stable order. */
std::vector<Workload> all();

} // namespace presets

/**
 * Generates the >300-workload population: every preset is replicated
 * with jittered parameters (update ratios, skew, working-set size...),
 * emulating the paper's "over 300 workloads ... from highly to poorly
 * scalable, from HTM to STM friendly".
 */
class WorkloadCorpus
{
  public:
    /**
     * @param variants_per_preset  how many jittered copies per preset
     * @param seed                 corpus RNG seed (reproducible)
     */
    static std::vector<Workload> generate(int variants_per_preset,
                                          std::uint64_t seed);
};

} // namespace proteus::simarch

#endif // PROTEUS_SIMARCH_WORKLOAD_MODEL_HPP
