#include "simarch/workload_model.hpp"

#include <algorithm>
#include <cmath>

namespace proteus::simarch {

std::array<double, kNumFeatures>
WorkloadFeatures::toVector() const
{
    return {readsPerTx,        writesPerTx,     txLocalWorkCycles,
            nonTxWorkCycles,   updateTxFraction, hotspotSkew,
            workingSetLines,   txSizeCv,        conflictDensity,
            cacheLocality,     pointerChaseDepth, rmwFraction,
            abortWasteFactor,  irrevocableFraction, memFootprintMb,
            threadImbalance,   burstiness};
}

const std::array<std::string, kNumFeatures> &
WorkloadFeatures::featureNames()
{
    static const std::array<std::string, kNumFeatures> names = {
        "reads_per_tx",      "writes_per_tx",    "tx_local_cycles",
        "non_tx_cycles",     "update_fraction",  "hotspot_skew",
        "working_set_lines", "tx_size_cv",       "conflict_density",
        "cache_locality",    "pointer_chase",    "rmw_fraction",
        "abort_waste",       "irrevocable_frac", "mem_footprint_mb",
        "thread_imbalance",  "burstiness"};
    return names;
}

namespace presets {

namespace {

Workload
make(std::string name, WorkloadFeatures f)
{
    return Workload{std::move(name), f};
}

} // namespace

Workload
genome()
{
    WorkloadFeatures f;
    f.readsPerTx = 60;
    f.writesPerTx = 6;
    f.txLocalWorkCycles = 800;
    f.nonTxWorkCycles = 400;
    f.updateTxFraction = 0.6;
    f.hotspotSkew = 0.1;
    f.workingSetLines = 4e5;
    f.txSizeCv = 0.5;
    f.conflictDensity = 0.4;
    f.cacheLocality = 0.6;
    f.pointerChaseDepth = 3;
    f.irrevocableFraction = 0.12; // allocation/page-fault heavy phases
    return make("genome", f);
}

Workload
intruder()
{
    WorkloadFeatures f;
    f.readsPerTx = 25;
    f.writesPerTx = 8;
    f.txLocalWorkCycles = 150;
    f.nonTxWorkCycles = 60;
    f.updateTxFraction = 0.9;
    f.hotspotSkew = 0.6;
    f.workingSetLines = 5e4;
    f.txSizeCv = 0.8;
    f.conflictDensity = 3.0;
    f.cacheLocality = 0.7;
    f.pointerChaseDepth = 5;
    return make("intruder", f);
}

Workload
kmeans()
{
    WorkloadFeatures f;
    f.readsPerTx = 8;
    f.writesPerTx = 4;
    f.txLocalWorkCycles = 400;
    f.nonTxWorkCycles = 1500;
    f.updateTxFraction = 1.0;
    f.hotspotSkew = 0.3;
    f.workingSetLines = 2e4;
    f.txSizeCv = 0.1;
    f.conflictDensity = 0.6;
    f.cacheLocality = 0.9;
    f.pointerChaseDepth = 1;
    return make("kmeans", f);
}

Workload
labyrinth()
{
    WorkloadFeatures f;
    f.readsPerTx = 1800;
    f.writesPerTx = 700; // routes a whole path: far over HTM capacity
    f.txLocalWorkCycles = 30000;
    f.nonTxWorkCycles = 500;
    f.updateTxFraction = 1.0;
    f.hotspotSkew = 0.05;
    f.workingSetLines = 8e5;
    f.txSizeCv = 0.4;
    f.conflictDensity = 0.02; // paths rarely overlap on a huge grid
    f.cacheLocality = 0.5;
    f.pointerChaseDepth = 2;
    f.abortWasteFactor = 0.9; // long txs lose almost everything
    return make("labyrinth", f);
}

Workload
ssca2()
{
    WorkloadFeatures f;
    f.readsPerTx = 4;
    f.writesPerTx = 2;
    f.txLocalWorkCycles = 80;
    f.nonTxWorkCycles = 300;
    f.updateTxFraction = 1.0;
    f.hotspotSkew = 0.05;
    f.workingSetLines = 2e6;
    f.txSizeCv = 0.1;
    f.conflictDensity = 0.1;
    f.cacheLocality = 0.3; // graph scatter
    f.pointerChaseDepth = 2;
    return make("ssca2", f);
}

Workload
vacation()
{
    WorkloadFeatures f;
    f.readsPerTx = 80;
    f.writesPerTx = 10;
    f.txLocalWorkCycles = 600;
    f.nonTxWorkCycles = 150;
    f.updateTxFraction = 0.8;
    f.hotspotSkew = 0.3;
    f.workingSetLines = 3e5;
    f.txSizeCv = 0.4;
    f.conflictDensity = 0.7;
    f.cacheLocality = 0.6;
    f.pointerChaseDepth = 6; // tree traversals
    return make("vacation", f);
}

Workload
yada()
{
    WorkloadFeatures f;
    f.readsPerTx = 300;
    f.writesPerTx = 90;
    f.txLocalWorkCycles = 6000;
    f.nonTxWorkCycles = 400;
    f.updateTxFraction = 1.0;
    f.hotspotSkew = 0.2;
    f.workingSetLines = 4e5;
    f.txSizeCv = 0.7;
    f.conflictDensity = 1.5;
    f.cacheLocality = 0.5;
    f.pointerChaseDepth = 4;
    f.abortWasteFactor = 0.8;
    return make("yada", f);
}

Workload
bayes()
{
    WorkloadFeatures f;
    f.readsPerTx = 900;
    f.writesPerTx = 120;
    f.txLocalWorkCycles = 20000;
    f.nonTxWorkCycles = 800;
    f.updateTxFraction = 1.0;
    f.hotspotSkew = 0.4;
    f.workingSetLines = 2e5;
    f.txSizeCv = 1.5; // hugely variable transactions
    f.conflictDensity = 2.0;
    f.cacheLocality = 0.5;
    f.pointerChaseDepth = 5;
    f.abortWasteFactor = 0.9;
    f.irrevocableFraction = 0.05;
    return make("bayes", f);
}

Workload
redBlackTree()
{
    WorkloadFeatures f;
    f.readsPerTx = 30; // root-to-leaf search
    f.writesPerTx = 3;
    f.txLocalWorkCycles = 120;
    f.nonTxWorkCycles = 50;
    f.updateTxFraction = 0.3;
    f.hotspotSkew = 0.15; // root is shared but rarely written
    f.workingSetLines = 1e5;
    f.txSizeCv = 0.2;
    f.conflictDensity = 0.5;
    f.cacheLocality = 0.55;
    f.pointerChaseDepth = 15;
    return make("rbt", f);
}

Workload
skipList()
{
    WorkloadFeatures f;
    f.readsPerTx = 40;
    f.writesPerTx = 4;
    f.txLocalWorkCycles = 140;
    f.nonTxWorkCycles = 50;
    f.updateTxFraction = 0.3;
    f.hotspotSkew = 0.1;
    f.workingSetLines = 1e5;
    f.txSizeCv = 0.4;
    f.conflictDensity = 0.4;
    f.cacheLocality = 0.5;
    f.pointerChaseDepth = 12;
    return make("skiplist", f);
}

Workload
linkedList()
{
    WorkloadFeatures f;
    f.readsPerTx = 250; // O(n) scans: giant read sets
    f.writesPerTx = 2;
    f.txLocalWorkCycles = 500;
    f.nonTxWorkCycles = 40;
    f.updateTxFraction = 0.2;
    f.hotspotSkew = 0.05;
    f.workingSetLines = 2e4;
    f.txSizeCv = 0.6;
    f.conflictDensity = 2.5; // every scan overlaps every writer
    f.cacheLocality = 0.6;
    f.pointerChaseDepth = 100;
    return make("linkedlist", f);
}

Workload
hashMap()
{
    WorkloadFeatures f;
    f.readsPerTx = 5;
    f.writesPerTx = 2;
    f.txLocalWorkCycles = 60;
    f.nonTxWorkCycles = 40;
    f.updateTxFraction = 0.3;
    f.hotspotSkew = 0.05;
    f.workingSetLines = 3e5;
    f.txSizeCv = 0.1;
    f.conflictDensity = 0.05; // hashing spreads accesses
    f.cacheLocality = 0.7;
    f.pointerChaseDepth = 2;
    return make("hashmap", f);
}

Workload
stmbench7()
{
    WorkloadFeatures f;
    f.readsPerTx = 400;
    f.writesPerTx = 40;
    f.txLocalWorkCycles = 5000;
    f.nonTxWorkCycles = 300;
    f.updateTxFraction = 0.45;
    f.hotspotSkew = 0.5; // shared object-graph roots
    f.workingSetLines = 1e6;
    f.txSizeCv = 1.2; // short traversals + long structural ops
    f.conflictDensity = 1.2;
    f.cacheLocality = 0.45;
    f.pointerChaseDepth = 20;
    f.memFootprintMb = 200;
    return make("stmbench7", f);
}

Workload
tpcc()
{
    WorkloadFeatures f;
    f.readsPerTx = 200;
    f.writesPerTx = 60; // new-order touches many rows
    f.txLocalWorkCycles = 4000;
    f.nonTxWorkCycles = 200;
    f.updateTxFraction = 0.92;
    f.hotspotSkew = 0.55; // warehouse rows
    f.workingSetLines = 6e5;
    f.txSizeCv = 0.6;
    f.conflictDensity = 1.4;
    f.cacheLocality = 0.55;
    f.pointerChaseDepth = 8;
    f.memFootprintMb = 400;
    return make("tpcc", f);
}

Workload
memcached()
{
    WorkloadFeatures f;
    f.readsPerTx = 6;
    f.writesPerTx = 2; // get/put on a hash table
    f.txLocalWorkCycles = 40;
    f.nonTxWorkCycles = 250; // network-ish per-request work
    f.updateTxFraction = 0.15;
    f.hotspotSkew = 0.4; // popular keys
    f.workingSetLines = 8e5;
    f.txSizeCv = 0.2;
    f.conflictDensity = 0.15;
    f.cacheLocality = 0.6;
    f.pointerChaseDepth = 2;
    f.memFootprintMb = 1024;
    return make("memcached", f);
}

std::vector<Workload>
all()
{
    return {genome(),       intruder(),  kmeans(),    labyrinth(),
            ssca2(),        vacation(),  yada(),      bayes(),
            redBlackTree(), skipList(),  linkedList(), hashMap(),
            stmbench7(),    tpcc(),      memcached()};
}

} // namespace presets

namespace {

double
jitterMul(Rng &rng, double value, double rel)
{
    // Log-uniform multiplicative jitter in [1/(1+rel), (1+rel)].
    const double f = std::exp(rng.uniform(-std::log1p(rel),
                                          std::log1p(rel)));
    return value * f;
}

double
clamp01(double x)
{
    return std::clamp(x, 0.0, 1.0);
}

} // namespace

std::vector<Workload>
WorkloadCorpus::generate(int variants_per_preset, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Workload> out;
    const auto base = presets::all();
    out.reserve(base.size() * static_cast<std::size_t>(variants_per_preset));

    for (const Workload &preset : base) {
        for (int v = 0; v < variants_per_preset; ++v) {
            Workload w = preset;
            w.name = preset.name + "#" + std::to_string(v);
            WorkloadFeatures &f = w.features;
            if (v > 0) { // variant 0 is the pristine preset
                f.readsPerTx = std::max(1.0, jitterMul(rng, f.readsPerTx, 0.8));
                f.writesPerTx =
                    std::max(0.5, jitterMul(rng, f.writesPerTx, 0.8));
                f.txLocalWorkCycles =
                    jitterMul(rng, f.txLocalWorkCycles, 0.6);
                f.nonTxWorkCycles = jitterMul(rng, f.nonTxWorkCycles, 0.8);
                f.updateTxFraction =
                    clamp01(f.updateTxFraction * rng.uniform(0.4, 1.6));
                f.hotspotSkew = clamp01(f.hotspotSkew + rng.uniform(-.15, .25));
                f.workingSetLines =
                    std::max(1e3, jitterMul(rng, f.workingSetLines, 1.5));
                f.txSizeCv = std::max(0.05, jitterMul(rng, f.txSizeCv, 0.5));
                f.conflictDensity =
                    std::max(0.01, jitterMul(rng, f.conflictDensity, 1.0));
                f.cacheLocality =
                    clamp01(f.cacheLocality + rng.uniform(-0.15, 0.15));
                f.pointerChaseDepth =
                    std::max(1.0, jitterMul(rng, f.pointerChaseDepth, 0.5));
                f.abortWasteFactor =
                    std::clamp(jitterMul(rng, f.abortWasteFactor, 0.3),
                               0.2, 1.0);
            }
            out.push_back(std::move(w));
        }
    }
    return out;
}

} // namespace proteus::simarch
