#include "simarch/perf_model.hpp"

#include <algorithm>
#include <cmath>

namespace proteus::simarch {

using polytm::KpiKind;
using polytm::TmConfig;
using tm::BackendKind;
using tm::CapacityPolicy;

BackendCosts
PerfModel::costsFor(BackendKind kind)
{
    BackendCosts c;
    switch (kind) {
      case BackendKind::kGlobalLock:
        // Uninstrumented path under one lock.
        c.beginCost = 40;
        c.perRead = 0.5;
        c.perWrite = 0.5;
        c.commitBase = 25;
        c.commitPerWrite = 0;
        c.commitPerReadValidate = 0;
        c.wholeTxSerialized = true;
        break;
      case BackendKind::kTl2:
        c.beginCost = 30;
        c.perRead = 18;
        c.perWrite = 12;
        c.commitBase = 80;
        c.commitPerWrite = 14;
        c.commitPerReadValidate = 4;
        break;
      case BackendKind::kTinyStm:
        c.beginCost = 25;
        c.perRead = 15;
        c.perWrite = 26; // encounter-time CAS
        c.commitBase = 55;
        c.commitPerWrite = 8;
        c.commitPerReadValidate = 3;
        c.eagerConflicts = true;
        c.conflictSensitivity = 0.9;
        break;
      case BackendKind::kNorec:
        c.beginCost = 18;
        c.perRead = 9; // just a value log append
        c.perWrite = 8;
        c.commitBase = 60;
        c.commitPerWrite = 9;
        c.commitPerReadValidate = 5; // value revalidation
        c.commitSerialized = true;
        c.conflictSensitivity = 1.5; // any writer commit revalidates all
        break;
      case BackendKind::kSwissTm:
        c.beginCost = 28;
        c.perRead = 13;
        c.perWrite = 28; // two-lock encounter-time claim
        c.commitBase = 90;
        c.commitPerWrite = 16;
        c.commitPerReadValidate = 3;
        c.eagerConflicts = true;
        c.conflictSensitivity = 0.75; // CM resolves w/w early & cheaply
        break;
      case BackendKind::kSimHtm:
        // Hardware path: uninstrumented accesses (plain loads/stores,
        // same as the global-lock path), pricey begin/commit.
        c.beginCost = 150;
        c.perRead = 0.5;
        c.perWrite = 0.5;
        c.commitBase = 90;
        c.commitPerWrite = 0;
        c.commitPerReadValidate = 0;
        c.eagerConflicts = true;
        c.conflictSensitivity = 1.3; // requester-wins dooming
        break;
      case BackendKind::kHybridNorec:
        c.beginCost = 170; // subscription on top of hw begin
        c.perRead = 0.6;
        c.perWrite = 0.6;
        c.commitBase = 110;
        c.commitPerWrite = 0;
        c.commitPerReadValidate = 0;
        c.commitSerialized = true; // every commit bumps the seqlock
        c.eagerConflicts = true;
        c.conflictSensitivity = 1.4;
        break;
      default:
        break;
    }
    return c;
}

PerfModel::PerfModel(MachineModel machine, double noise_sigma,
                     std::uint64_t seed)
    : machine_(std::move(machine)), noiseSigma_(noise_sigma), seed_(seed)
{
}

namespace {

/** Probability that a lognormal-ish tx footprint exceeds a capacity. */
double
capacityTailProb(double mean_lines, double capacity_lines, double cv)
{
    if (mean_lines <= 0)
        return 0.0;
    const double sigma = 0.25 + 0.75 * cv; // size-spread in log space
    const double z = std::log(mean_lines / capacity_lines) / sigma;
    return 1.0 / (1.0 + std::exp(-3.0 * z)); // logistic tail
}

/** Amplification of conflict probability from access skew. */
double
skewAmplification(double theta)
{
    const double t = std::min(theta, 0.95);
    return 1.0 / ((1.0 - t) * (1.0 - t));
}

} // namespace

double
PerfModel::throughputTps(const WorkloadFeatures &f,
                         const TmConfig &config) const
{
    const BackendCosts bc = costsFor(config.backend);
    const int n = std::max(1, std::min(config.threads,
                                       machine_.maxThreads()));
    const double clock_hz = machine_.clockGhz * 1e9;
    const double coherence = machine_.coherencePenalty(n);

    // Memory-boundedness factor (CPI penalty) of this workload.
    const double cpi = 1.0 + 1.5 * (1.0 - f.cacheLocality) +
                       f.pointerChaseDepth / 60.0;

    const double u = std::clamp(f.updateTxFraction, 0.0, 1.0);
    const double reads = f.readsPerTx;
    const double writes = std::max(0.1, f.writesPerTx);

    // ---- Per-transaction cycle cost (single attempt) ----------------
    // Update transactions.
    double tx_upd = bc.beginCost + f.txLocalWorkCycles * cpi +
                    (reads * bc.perRead + writes * bc.perWrite) * cpi;
    double commit_upd = bc.commitBase + writes * bc.commitPerWrite +
                        reads * bc.commitPerReadValidate;
    // Read-only transactions commit almost for free in every backend.
    double tx_ro = bc.beginCost + f.txLocalWorkCycles * cpi +
                   reads * bc.perRead * cpi;
    double commit_ro = 0.25 * bc.commitBase;

    // Commit-time metadata traffic is coherence-bound.
    commit_upd *= coherence;
    commit_ro *= std::sqrt(coherence);

    // ---- Conflict model ---------------------------------------------
    const double skew_amp = skewAmplification(f.hotspotSkew);
    const double pair_conflict =
        std::min(0.9, bc.conflictSensitivity * f.conflictDensity *
                          skew_amp * (reads + writes) * writes /
                          std::max(1.0, f.workingSetLines));
    const double writers = std::max(0.0, (n - 1) * u);
    double p_abort =
        1.0 - std::pow(1.0 - pair_conflict, writers);
    p_abort = std::min(p_abort, 0.98);

    // Wasted work per committed update tx (STM path; the HTM path
    // derives its own waste from the budget/policy model below).
    const double waste_frac = f.abortWasteFactor *
                              (bc.eagerConflicts ? 0.55 : 1.0);
    const double retries = p_abort / (1.0 - p_abort);
    double waste_upd =
        retries * (tx_upd + commit_upd) * waste_frac * coherence;

    // ---- HTM capacity + budget/policy model -------------------------
    double fallback_frac = 0.0; // fraction of txs ending irrevocable
    double hw_wasted_attempts = 0.0;
    double fb_cycles = 0.0; // cost of one irrevocable (fallback) tx
    const bool is_htm = config.backend == BackendKind::kSimHtm ||
                        config.backend == BackendKind::kHybridNorec;
    if (is_htm) {
        const double read_lines = reads * 0.85;
        const double write_lines = writes * 0.9;
        const double p_cap_r = capacityTailProb(
            read_lines, machine_.htmReadCapacityLines, f.txSizeCv);
        const double p_cap_w = capacityTailProb(
            write_lines, machine_.htmWriteCapacityLines, f.txSizeCv);
        const double p_cap = 1.0 - (1.0 - p_cap_r) * (1.0 - p_cap_w);

        const int budget = std::max(1, config.cm.htmBudget);
        // Capacity aborts are *semi-transient*: transaction footprints
        // vary across retries (the more size variance, the better the
        // odds that a retry fits), so spending budget on capacity
        // aborts can pay off. rho = probability a capacity abort
        // repeats on the next attempt.
        const double rho_base =
            std::clamp(1.0 / (1.0 + 1.2 * f.txSizeCv), 0.15, 0.98);
        // Conditioned on having aborted once, a retry re-aborts with
        // at least the unconditional tail probability: workloads whose
        // mean footprint exceeds capacity stay capacity-bound.
        const double rho = p_cap + (1.0 - p_cap) * rho_base;
        // Attempts the policy grants after the first capacity abort.
        double cap_attempts = 1.0; // kGiveUp: bail immediately
        switch (config.cm.capacityPolicy) {
          case CapacityPolicy::kDecrease:
            cap_attempts = budget;
            break;
          case CapacityPolicy::kHalve:
            cap_attempts = std::ceil(std::log2(budget + 1));
            break;
          default:
            break;
        }
        // Conflict aborts are transient: all `budget` retries are
        // available, fallback only if all fail.
        const double p_conf_fb = std::pow(p_abort, budget);
        // Expected attempts burned on transient conflicts (truncated
        // geometric): sum_{k=0..b-1} p^k, minus the successful one.
        const double attempts_conf =
            (1.0 - p_conf_fb) / std::max(1e-9, 1.0 - p_abort);
        const double wasted_conf =
            std::max(0.0, attempts_conf - (1.0 - p_conf_fb));

        // Capacity: fall back only if all granted attempts re-abort.
        const double p_cap_fb =
            p_cap * std::pow(rho, std::max(0.0, cap_attempts - 1.0));
        const double wasted_cap =
            p_cap * std::min(cap_attempts,
                             (1.0 - std::pow(rho, cap_attempts)) /
                                 std::max(1e-9, 1.0 - rho));

        fallback_frac =
            std::min(1.0, p_cap_fb + (1.0 - p_cap_fb) * p_conf_fb +
                              f.irrevocableFraction);
        hw_wasted_attempts = wasted_cap + (1.0 - p_cap) * wasted_conf;
        // The HTM path derives its waste from budgets, not from the
        // STM retry model computed above.
        waste_upd = hw_wasted_attempts * (tx_upd + commit_upd) *
                    f.abortWasteFactor;
        // Plus collateral: a fallback acquisition dooms every
        // speculating sibling (the emulated coherence kill).
        waste_upd += fallback_frac * (n - 1) * 0.3 * tx_upd;
    }

    // ---- Average cycles per committed transaction -------------------
    // Successful-path cost first; waste applies to *every* committed
    // transaction regardless of which path finally commits it.
    double cycles_upd = tx_upd + commit_upd;
    double cycles_ro = tx_ro + commit_ro;
    if (is_htm && fallback_frac > 0.0) {
        // Fallback txs run uninstrumented but irrevocably.
        const BackendCosts gl = costsFor(BackendKind::kGlobalLock);
        fb_cycles = gl.beginCost + f.txLocalWorkCycles * cpi +
                    (reads * gl.perRead + writes * gl.perWrite) * cpi;
        cycles_upd = (1.0 - fallback_frac) * cycles_upd +
                     fallback_frac * fb_cycles;
    }
    cycles_upd += waste_upd;
    const double cycles_avg = u * cycles_upd + (1.0 - u) * cycles_ro +
                              f.nonTxWorkCycles * cpi;

    // ---- Parallel throughput bound ----------------------------------
    const double eff_cores =
        machine_.effectiveCores(n) *
        (1.0 - 0.5 * f.threadImbalance * (1.0 - 1.0 / n));
    const double parallel_tps = eff_cores * clock_hz / cycles_avg;

    // ---- Serialization bounds ---------------------------------------
    double tps = parallel_tps;
    if (bc.wholeTxSerialized) {
        const double serial_cycles =
            cycles_avg * (1.0 + 0.06 * (n - 1) * coherence);
        tps = std::min(tps, clock_hz / serial_cycles);
    }
    if (bc.commitSerialized && u > 0) {
        // One writer commit at a time (NOrec/Hybrid seqlock).
        const double commit_section = commit_upd;
        tps = std::min(tps, clock_hz / (commit_section * u));
    }
    if (is_htm && fallback_frac > 0) {
        // Fallback lock holders serialize whole transactions; the
        // serial section per *committed tx overall* is the fallback
        // fraction times one full lock-held transaction.
        const double fb_section = fb_cycles * fallback_frac * u;
        if (fb_section > 0)
            tps = std::min(tps, clock_hz / fb_section);
    }
    if (!bc.wholeTxSerialized && !bc.commitSerialized && !is_htm && u > 0) {
        // Timestamp-based STMs still tick one global clock per writer.
        const double tick = 18.0 * coherence;
        tps = std::min(tps, clock_hz / (tick * u));
    }

    return tps;
}

double
PerfModel::noiseFactor(const Workload &workload, const TmConfig &config,
                       KpiKind kind) const
{
    if (noiseSigma_ <= 0)
        return 1.0;
    std::uint64_t h = seed_;
    for (const char ch : workload.name)
        h = h * 1099511628211ull ^ static_cast<std::uint64_t>(ch);
    h = h * 1099511628211ull ^ static_cast<std::uint64_t>(config.backend);
    h = h * 1099511628211ull ^ static_cast<std::uint64_t>(config.threads);
    h = h * 1099511628211ull ^
        static_cast<std::uint64_t>(config.cm.htmBudget);
    h = h * 1099511628211ull ^
        static_cast<std::uint64_t>(config.cm.capacityPolicy);
    h = h * 1099511628211ull ^ static_cast<std::uint64_t>(kind);
    Rng rng(h);
    return std::exp(noiseSigma_ * rng.nextGaussian());
}

double
PerfModel::kpi(const Workload &workload, const TmConfig &config,
               KpiKind kind, bool noisy) const
{
    const double tps = throughputTps(workload.features, config);
    double value = 0.0;
    switch (kind) {
      case KpiKind::kThroughput:
        value = tps;
        break;
      case KpiKind::kExecTime:
        value = kBatchTxs / tps;
        break;
      case KpiKind::kEdp: {
        const double seconds = kBatchTxs / tps;
        value = machine_.power.edp(seconds, config.threads);
        break;
      }
    }
    return noisy ? value * noiseFactor(workload, config, kind) : value;
}

std::vector<double>
PerfModel::kpiRow(const Workload &workload,
                  const polytm::ConfigSpace &space, KpiKind kind,
                  bool noisy) const
{
    std::vector<double> row;
    row.reserve(space.size());
    for (const auto &config : space.all())
        row.push_back(kpi(workload, config, kind, noisy));
    return row;
}

} // namespace proteus::simarch
