#include "simarch/machine.hpp"

namespace proteus::simarch {

MachineModel
MachineModel::machineA()
{
    MachineModel m;
    m.name = "machineA";
    m.sockets = 1;
    m.coresPerSocket = 4;
    m.smtPerCore = 2;
    m.clockGhz = 3.5;
    m.hasHtm = true;
    m.hasRapl = true;
    m.htmReadCapacityLines = 1024; // L1+L2-backed read tracking
    m.htmWriteCapacityLines = 400; // ~L1 minus associativity losses
    m.numaFactor = 1.0;
    m.smtYield = 0.35;
    m.power.staticWatts = 10.0;
    m.power.perThreadWatts = 5.0;
    return m;
}

MachineModel
MachineModel::machineB()
{
    MachineModel m;
    m.name = "machineB";
    m.sockets = 4;
    m.coresPerSocket = 12;
    m.smtPerCore = 1;
    m.clockGhz = 2.1;
    m.hasHtm = false;
    m.hasRapl = false;
    m.numaFactor = 3.0; // cross-socket coherence is ~3x dearer
    m.smtYield = 0.0;
    m.power.staticWatts = 60.0; // 4 sockets of uncore
    m.power.perThreadWatts = 4.0;
    return m;
}

} // namespace proteus::simarch
