/**
 * kv_service — ProteusKV end to end: a sharded transactional KV store
 * serving phase-shifting YCSB-style traffic while one ProteusRuntime
 * per shard re-tunes that shard's TM configuration online.
 *
 * Timeline:
 *   1. train a RecTM engine on a synthetic utility matrix over the
 *      per-shard configuration menu;
 *   2. start the store (2 shards) and the traffic driver (4 workers,
 *      read-heavy uniform mix);
 *   3. run the per-shard closed loops; one third in, traffic turns
 *      scan-heavy and contended — each shard's CUSUM monitor detects
 *      the KPI collapse and triggers a re-tuning episode.
 *
 * The run fails (exit 1) unless every shard re-tuned at least once
 * after the phase shift, making this the subsystem's executable
 * acceptance check.
 *
 * While serving, a reporter thread prints a one-line telemetry
 * snapshot every second (ops, commits, aborts, retunes — all from
 * KvStore::telemetry()); on exit the full metric registry is dumped
 * in Prometheus text format.
 *
 * Build & run:  ./build/kv_service
 *
 * Exit codes:
 *   0  graceful run (including SIGINT/SIGTERM orderly shutdown)
 *   1  acceptance failure (a shard never re-tuned, value-layer check)
 *   3  durability failure — the store's health ladder reached
 *      kFailed (unrescuable WAL loss); final telemetry is dumped so
 *      the flight recorder's wal.error / health.transition events
 *      survive the crash-out. A degraded-read-only store does NOT
 *      exit: it logs once and keeps serving reads.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

#include "common/timing.hpp"
#include "kvstore/kv_tunable.hpp"
#include "kvstore/traffic.hpp"
#include "rectm/engine.hpp"

using namespace proteus;
using kvstore::KvAutoTuner;
using kvstore::KvStore;
using kvstore::KvStoreOptions;
using kvstore::KvTunableOptions;
using kvstore::MixKind;
using kvstore::TrafficDriver;
using kvstore::TrafficMix;
using kvstore::TrafficOptions;

namespace {

/** Set by the SIGINT/SIGTERM handler; polled once per tuner period. */
std::atomic<int> g_signal{0};

extern "C" void
onSignal(int sig)
{
    g_signal.store(sig);
}

/** Thrown from the tuner's before-period hook to cancel the run. */
struct ServiceShutdown
{
};

/** Synthetic training matrix over the menu's columns (unimodal rows
 *  with per-workload scale — the same shape the runtime tests use). */
rectm::RecTmEngine
trainEngine(std::size_t cols)
{
    rectm::UtilityMatrix train(16, cols);
    Rng rng(2026);
    for (std::size_t r = 0; r < 16; ++r) {
        const double scale = rng.uniform(1.0, 100.0);
        for (std::size_t c = 0; c < cols; ++c) {
            const double x = static_cast<double>(c);
            const double mid = static_cast<double>(cols) / 2.0;
            train.set(r, c,
                      scale * (1.0 + x - 0.12 * (x - mid) * (x - mid)) *
                          rng.uniform(0.97, 1.03));
        }
    }
    rectm::RecTmEngine::Options opts;
    opts.tuner.trials = 8;
    return rectm::RecTmEngine(train, opts);
}

} // namespace

int
main()
{
    constexpr int kShards = 2;
    constexpr int kWorkers = 4;
    constexpr int kPeriods = 120;
    constexpr int kShiftPeriod = kPeriods / 3;

    KvTunableOptions tunable_options;
    tunable_options.menu = KvTunableOptions::defaultMenu();
    tunable_options.periodSeconds = 0.015;

    std::printf("training RecTM engine (%zu-config menu)...\n",
                tunable_options.menu.size());
    const auto engine = trainEngine(tunable_options.menu.size());
    std::printf("  model: %s (cv MAPE %.3f)\n",
                engine.modelDescription().c_str(),
                engine.tunerCvMape());

    KvStoreOptions store_options;
    store_options.numShards = kShards;
    store_options.log2SlotsPerShard = 12;
    store_options.initial = {tm::BackendKind::kTl2, 2, {}};
    store_options.durability = kvstore::Durability::kBuffered;
    store_options.walDir = "kv_service_wal";
    KvStore store(store_options);
    std::printf("durability: buffered WAL at %s (recovered: %llu "
                "checkpoint entries, %llu records, %llu in-doubt "
                "aborted)\n",
                store_options.walDir.c_str(),
                static_cast<unsigned long long>(
                    store.recoveryInfo().checkpointEntries),
                static_cast<unsigned long long>(
                    store.recoveryInfo().replayedRecords),
                static_cast<unsigned long long>(
                    store.recoveryInfo().inDoubtAborted));

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    TrafficOptions traffic_options;
    traffic_options.threads = kWorkers;
    traffic_options.phases = {TrafficMix::preset(MixKind::kReadHeavy),
                              TrafficMix::preset(MixKind::kScanHeavy)};
    traffic_options.phases[0].keySpace = 2048;
    traffic_options.phases[1].keySpace = 128;
    traffic_options.phases[1].scanLen = 512;
    TrafficDriver driver(store, traffic_options);
    std::printf("preloading %d keys over %d shards...\n", 1024,
                kShards);
    driver.preload(1024);
    driver.start();

    rectm::RuntimeOptions runtime_options;
    runtime_options.smbo.maxExplorations = 6;
    runtime_options.cusum.warmup = 3;
    runtime_options.cusum.threshold = 6.0;
    KvAutoTuner tuner(store, engine, tunable_options, runtime_options);

    std::printf("serving: %d workers, read-heavy; phase shift to "
                "scan-heavy at period %d of %d\n",
                kWorkers, kShiftPeriod, kPeriods);

    // Drive the phase shift from wall clock: controllers are
    // per-shard, so the shift keys off the first shard's progress via
    // a plain timer thread instead.
    std::atomic<bool> done{false};

    // Periodic telemetry: one compact line per second, straight off
    // the registry — the kind of heartbeat a real service would ship
    // to its log collector.
    std::thread reporter([&] {
        Stopwatch sw;
        double next_tick = 1.0;
        bool degraded_logged = false;
        while (!done.load()) {
            if (sw.elapsedSeconds() < next_tick) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
                continue;
            }
            next_tick += 1.0;
            // Degradation is a service event, not a service death:
            // writes bounce with kReadOnly but reads keep flowing, so
            // log it once and stay up. Only kFailed exits (below).
            const kvstore::Health health = store.health();
            if (health != kvstore::Health::kHealthy &&
                !degraded_logged) {
                degraded_logged = true;
                std::printf("!!! store health is now %s — writes "
                            "rejected, continuing to serve reads\n",
                            kvstore::healthName(health));
            }
            const obs::TelemetrySnapshot snap = store.telemetry();
            std::printf(
                "[telemetry t=%.0fs] ops=%llu tm_commits=%llu "
                "tm_aborts=%llu commit_seq=%llu retunes=%llu "
                "grows=%llu\n",
                sw.elapsedSeconds(),
                static_cast<unsigned long long>(
                    snap.value("traffic_ops")),
                static_cast<unsigned long long>(
                    snap.value("tm_commits")),
                static_cast<unsigned long long>(
                    snap.value("tm_aborts")),
                static_cast<unsigned long long>(snap.commitSeq),
                static_cast<unsigned long long>(
                    snap.value("tuner_retunes")),
                static_cast<unsigned long long>(
                    snap.value("shard_grows")));
        }
    });

    std::thread phaser([&] {
        const double shift_after =
            kShiftPeriod * tunable_options.periodSeconds;
        Stopwatch sw;
        while (!done.load()) {
            if (sw.elapsedSeconds() > shift_after) {
                driver.setPhase(1);
                std::printf(">>> traffic turned scan-heavy + "
                            "contended\n");
                return;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
    });

    // SIGINT/SIGTERM cancel the tuning run between periods: the hook
    // throws on every shard's controller thread, the group joins, and
    // the service falls through to an orderly drain instead of dying
    // with buffered WAL bytes in memory.
    std::vector<std::vector<rectm::PeriodRecord>> records;
    bool interrupted = false;
    try {
        records = tuner.run(kPeriods, [&store](std::size_t, int) {
            if (g_signal.load() != 0)
                throw ServiceShutdown{};
            // A failed durability plane cancels the run the same
            // orderly way a signal does; main() then exits 3.
            if (store.health() == kvstore::Health::kFailed)
                throw ServiceShutdown{};
        });
    } catch (const ServiceShutdown &) {
        interrupted = true;
    }
    done.store(true);
    phaser.join();
    reporter.join();
    driver.stop();

    if (store.health() == kvstore::Health::kFailed) {
        // Durability contract void: dump everything the registry and
        // flight recorder know (the wal.error / health.transition
        // trail is in here), then exit with the distinct code the
        // supervisor keys restarts off — see the exit-code contract
        // in the header comment.
        std::printf("FATAL: store health is failed — a shard's WAL is "
                    "unusable; %llu writes rejected, %llu wal errors\n",
                    static_cast<unsigned long long>(
                        store.telemetry().value("writes_rejected")),
                    static_cast<unsigned long long>(
                        store.telemetry().value("wal_errors")));
        std::printf("\n--- final telemetry (Prometheus text) ---\n%s",
                    store.telemetry().toPrometheus().c_str());
        return 3;
    }

    std::printf("\n%llu client ops served (%llu cross-shard "
                "multiOps)\n",
                static_cast<unsigned long long>(driver.opsCompleted()),
                static_cast<unsigned long long>(
                    driver.multiOpsCompleted()));

    if (interrupted) {
        // Graceful shutdown: flush buffered WAL tail, checkpoint so
        // the next start replays nothing, and dump final telemetry.
        // The re-tune acceptance gate is waived — the run was cut
        // short on purpose.
        store.flushWal();
        auto session = store.openSession();
        store.checkpoint(session);
        store.closeSession(session);
        std::printf("signal %d: graceful shutdown — WAL flushed and "
                    "checkpointed, %llu wal appends / %llu wal bytes\n",
                    g_signal.load(),
                    static_cast<unsigned long long>(
                        store.telemetry().value("wal_appends")),
                    static_cast<unsigned long long>(
                        store.telemetry().value("wal_bytes")));
        std::printf("\n--- final telemetry (Prometheus text) ---\n%s",
                    store.telemetry().toPrometheus().c_str());
        return 0;
    }

    static const char *const kPhaseNames[] = {"read-heavy",
                                              "scan-heavy"};
    for (std::size_t p = 0; p < traffic_options.phases.size(); ++p) {
        const kvstore::PhaseLatency lat = driver.latency(p);
        if (lat.count == 0)
            continue;
        std::printf("latency %-10s  p50 %6llu ns  p95 %6llu ns  "
                    "p99 %6llu ns  max %8llu ns  (%llu ops)\n",
                    kPhaseNames[p],
                    static_cast<unsigned long long>(lat.p50),
                    static_cast<unsigned long long>(lat.p95),
                    static_cast<unsigned long long>(lat.p99),
                    static_cast<unsigned long long>(lat.max),
                    static_cast<unsigned long long>(lat.count));
    }

    bool all_retuned = true;
    for (int s = 0; s < kShards; ++s) {
        const auto &recs = records[static_cast<std::size_t>(s)];
        int changes = 0;
        for (const auto &rec : recs)
            changes += rec.changeDetected ? 1 : 0;
        const auto &tunable =
            tuner.tunable(static_cast<std::size_t>(s));
        const std::size_t settled = recs.back().config;
        std::printf("shard %d: %d episodes, %d CUSUM detections, %d "
                    "reconfigurations, settled on %s\n",
                    s, tuner.episodes(static_cast<std::size_t>(s)),
                    changes, tunable.reconfigurations(),
                    tunable.configAt(settled).label().c_str());
        all_retuned &=
            tuner.episodes(static_cast<std::size_t>(s)) >= 2 &&
            changes >= 1;
    }

    if (!all_retuned) {
        std::printf("FAIL: not every shard re-tuned after the phase "
                    "shift\n");
        return 1;
    }
    std::printf("OK: every shard detected the phase change and "
                "re-tuned\n");

    // Epilogue: the value layer in one breath — a wide (blob) value
    // with a TTL round-trips, then expires; shards report how often
    // they grew online under the day's traffic. A degraded store
    // rejects these writes by design, so the epilogue (and the final
    // checkpoint) only run while healthy — degraded drains still
    // exit 0 per the contract at the top of this file.
    if (store.health() != kvstore::Health::kHealthy) {
        std::printf("store drained degraded: skipping the write-based "
                    "epilogue and final checkpoint\n");
        std::printf("\n--- final telemetry (Prometheus text) ---\n%s",
                    store.telemetry().toPrometheus().c_str());
        return 0;
    }
    {
        auto session = store.openSession();
        std::string blob(256, '\0');
        for (std::size_t i = 0; i < blob.size(); ++i)
            blob[i] = static_cast<char>('a' + i % 26);
        constexpr std::uint64_t kTtl = 30ull * 1000 * 1000; // 30 ms
        std::string out;
        if (!store.putBytes(session, 1u << 30, blob.data(),
                            blob.size(), kTtl) ||
            !store.getBytes(session, 1u << 30, &out) || out != blob) {
            std::printf("FAIL: wide value did not round-trip\n");
            return 1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(45));
        if (store.getBytes(session, 1u << 30, &out)) {
            std::printf("FAIL: TTL'd value did not expire\n");
            return 1;
        }
        std::printf("value layer: 256 B blob round-tripped and "
                    "expired after its 30 ms TTL; online grows:");
        for (int s = 0; s < kShards; ++s) {
            std::printf(" shard%d=%llu", s,
                        static_cast<unsigned long long>(
                            store.shard(static_cast<std::size_t>(s))
                                .growCount()));
        }
        std::printf("\n");

        // Orderly exit: checkpoint truncates the day's WAL so the
        // next start replays nothing.
        store.checkpoint(session);
        const obs::TelemetrySnapshot snap = store.telemetry();
        std::printf("durability: %llu wal appends, %llu wal bytes, "
                    "%llu checkpoint chunks; log truncated\n",
                    static_cast<unsigned long long>(
                        snap.value("wal_appends")),
                    static_cast<unsigned long long>(
                        snap.value("wal_bytes")),
                    static_cast<unsigned long long>(
                        snap.value("checkpoint_chunks")));
        store.closeSession(session);
    }

    // Exit dump: everything the store counted all day, in the format
    // a scraper would pull.
    std::printf("\n--- final telemetry (Prometheus text) ---\n%s",
                store.telemetry().toPrometheus().c_str());
    return 0;
}
