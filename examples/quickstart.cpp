/**
 * Quickstart — the ProteusTM public API in ~60 lines.
 *
 * 1. Create a PolyTm runtime (the polymorphic TM).
 * 2. Declare transactional fields.
 * 3. Run atomic blocks from any number of threads.
 * 4. Reconfigure the TM algorithm / parallelism degree at runtime —
 *    transparently to the transaction code.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <thread>
#include <vector>

#include "polytm/polytm.hpp"

using namespace proteus;

int
main()
{
    // Start on TL2 with up to 4 active threads.
    polytm::PolyTm poly({tm::BackendKind::kTl2, 4, {}});

    // Word-sized transactional fields.
    polytm::TxField<long> balance_a(1000);
    polytm::TxField<long> balance_b(0);
    polytm::TxField<long> transfers(0);

    auto worker = [&](int amount, int repeats) {
        auto token = poly.registerThread();
        for (int i = 0; i < repeats; ++i) {
            poly.run(token, [&](polytm::Tx &tx) {
                const long a = tx.read(balance_a);
                if (a < amount)
                    return; // insufficient funds: commit a no-op
                tx.write(balance_a, a - amount);
                tx.write(balance_b, tx.read(balance_b) + amount);
                tx.write(transfers, tx.read(transfers) + 1);
            });
        }
        poly.deregisterThread(token);
    };

    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back(worker, 1, 200);

    // Meanwhile, hot-swap the TM implementation under the running
    // transactions: quiesce -> switch -> resume, all inside here.
    poly.reconfigure({tm::BackendKind::kNorec, 4, {}});
    poly.reconfigure({tm::BackendKind::kSimHtm, 2, {}});
    poly.reconfigure({tm::BackendKind::kTinyStm, 4, {}});

    for (auto &th : threads)
        th.join();

    const auto stats = poly.snapshotStats();
    std::printf("final: A=%ld B=%ld transfers=%ld (conserved: %s)\n",
                balance_a.rawGet(), balance_b.rawGet(),
                transfers.rawGet(),
                balance_a.rawGet() + balance_b.rawGet() == 1000
                    ? "yes"
                    : "NO");
    std::printf("commits=%llu aborts=%llu across 3 live TM switches\n",
                static_cast<unsigned long long>(stats.commits),
                static_cast<unsigned long long>(stats.aborts));
    return balance_a.rawGet() + balance_b.rawGet() == 1000 ? 0 : 1;
}
