/**
 * Dynamic workload — the whole closed loop (Fig. 8 in miniature):
 * ProteusRuntime drives a simulated TPC-C service through three
 * workload phases; the Monitor detects each shift and the Controller
 * re-explores, printing the live KPI timeline.
 *
 * Build & run:  ./build/examples/dynamic_workload
 */

#include <cstdio>

#include "rectm/proteus_runtime.hpp"
#include "simarch/perf_model.hpp"

using namespace proteus;
using polytm::ConfigSpace;
using polytm::KpiKind;

namespace {

/** Simulated live system: phase-dependent TPC-C KPI per config. */
class TpccService : public rectm::TunableSystem
{
  public:
    TpccService(const simarch::PerfModel &perf, const ConfigSpace &space)
        : perf_(perf), space_(space), rng_(7)
    {
        phases_.push_back(simarch::presets::tpcc()); // normal
        auto peak = simarch::presets::tpcc();        // peak hours
        peak.features.updateTxFraction = 1.0;
        peak.features.conflictDensity *= 6.0;
        peak.features.hotspotSkew = 0.8;
        phases_.push_back(peak);
        auto reporting = simarch::presets::tpcc();   // analytics mix
        reporting.features.readsPerTx *= 10.0;
        reporting.features.updateTxFraction = 0.1;
        reporting.features.txSizeCv += 0.8;
        phases_.push_back(reporting);
    }

    void setPhase(std::size_t p) { phase_ = p % phases_.size(); }
    std::size_t numConfigs() const override { return space_.size(); }
    void applyConfig(std::size_t c) override { config_ = c; }

    double
    measureKpi() override
    {
        return perf_.kpi(phases_[phase_], space_.at(config_),
                         KpiKind::kThroughput, false) *
               (1.0 + 0.01 * rng_.nextGaussian());
    }

  private:
    const simarch::PerfModel &perf_;
    const ConfigSpace &space_;
    std::vector<simarch::Workload> phases_;
    std::size_t phase_ = 0;
    std::size_t config_ = 0;
    Rng rng_;
};

} // namespace

int
main()
{
    const auto space = ConfigSpace::machineA();
    const simarch::PerfModel perf(simarch::MachineModel::machineA());

    // Train the recommender on everything except TPC-C variants.
    const auto corpus = simarch::WorkloadCorpus::generate(8, 99);
    std::vector<simarch::Workload> train;
    for (const auto &w : corpus) {
        if (w.name.rfind("tpcc#", 0) != 0)
            train.push_back(w);
    }
    rectm::UtilityMatrix matrix(train.size(), space.size());
    for (std::size_t r = 0; r < train.size(); ++r) {
        const auto row =
            perf.kpiRow(train[r], space, KpiKind::kThroughput);
        for (std::size_t c = 0; c < space.size(); ++c)
            matrix.set(r, c,
                       rectm::toGoodness(row[c], KpiKind::kThroughput));
    }
    rectm::RecTmEngine::Options opts;
    opts.tuner.trials = 12;
    const rectm::RecTmEngine engine(matrix, opts);

    TpccService service(perf, space);
    rectm::RuntimeOptions ropts;
    ropts.kpi = KpiKind::kThroughput;
    ropts.smbo.epsilon = 0.01;
    rectm::ProteusRuntime runtime(engine, service, ropts);

    const char *phase_names[] = {"normal", "peak-hours", "reporting"};
    const auto records = runtime.run(90, [&](int period) {
        const auto p = static_cast<std::size_t>(period / 30);
        service.setPhase(p);
    });

    std::printf("%-8s %-12s %-20s %14s %s\n", "period", "phase",
                "config", "tx/s", "event");
    for (const auto &rec : records) {
        if (rec.period % 5 != 0 && !rec.exploring && !rec.changeDetected)
            continue;
        std::printf("%-8d %-12s %-20s %14.0f %s\n", rec.period,
                    phase_names[rec.period / 30],
                    space.at(rec.config).label().c_str(), rec.kpi,
                    rec.exploring
                        ? "explore"
                        : (rec.changeDetected ? "<-- change" : ""));
    }
    std::printf("\nepisodes: %d (1 initial + re-adaptations)\n",
                runtime.episodes());
    return runtime.episodes() >= 2 ? 0 : 1;
}
