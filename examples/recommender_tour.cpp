/**
 * Recommender tour — the RecTM learning pipeline end to end, on the
 * simulated many-core testbed:
 *
 *  1. build the offline training Utility Matrix (workloads x the 130
 *     Machine-A configurations) from the performance model;
 *  2. rating distillation picks the reference configuration;
 *  3. random search + cross-validation select the CF algorithm;
 *  4. a bagging ensemble becomes SMBO's probabilistic model;
 *  5. a never-seen workload is optimized in a handful of samples.
 *
 * Build & run:  ./build/examples/recommender_tour
 */

#include <cstdio>

#include "rectm/engine.hpp"
#include "simarch/perf_model.hpp"

using namespace proteus;
using polytm::ConfigSpace;
using polytm::KpiKind;

int
main()
{
    const auto space = ConfigSpace::machineA();
    const simarch::PerfModel perf(simarch::MachineModel::machineA());

    // 1. Offline profiling: 90 workloads from 15 application families.
    const auto corpus = simarch::WorkloadCorpus::generate(6, 2026);
    std::vector<simarch::Workload> train(corpus.begin(),
                                         corpus.end() - 6);
    const simarch::Workload target = corpus.back(); // held out
    std::printf("training on %zu workloads x %zu configurations\n",
                train.size(), space.size());

    rectm::UtilityMatrix matrix(train.size(), space.size());
    for (std::size_t r = 0; r < train.size(); ++r) {
        const auto row =
            perf.kpiRow(train[r], space, KpiKind::kThroughput);
        for (std::size_t c = 0; c < space.size(); ++c)
            matrix.set(r, c,
                       rectm::toGoodness(row[c], KpiKind::kThroughput));
    }

    // 2-4. Distillation + CF selection + ensemble.
    rectm::RecTmEngine::Options opts;
    opts.tuner.trials = 16;
    const rectm::RecTmEngine engine(matrix, opts);
    std::printf("reference configuration (C*): %s\n",
                space.at(static_cast<std::size_t>(
                             engine.referenceColumn()))
                    .label()
                    .c_str());
    std::printf("selected CF model: %s (cv MAPE %.3f)\n",
                engine.modelDescription().c_str(),
                engine.tunerCvMape());

    // 5. Optimize the held-out workload.
    std::printf("\noptimizing held-out workload '%s'...\n",
                target.name.c_str());
    int samples = 0;
    auto sampler = [&](std::size_t c) {
        const double kpi =
            perf.kpi(target, space.at(c), KpiKind::kThroughput);
        std::printf("  sample %d: %-18s -> %12.0f tx/s\n", ++samples,
                    space.at(c).label().c_str(), kpi);
        return rectm::toGoodness(kpi, KpiKind::kThroughput);
    };
    rectm::SmboOptions smbo;
    smbo.epsilon = 0.01;
    const auto result = engine.optimize(sampler, smbo);

    // Compare against the true optimum (oracle view).
    const auto truth =
        perf.kpiRow(target, space, KpiKind::kThroughput, false);
    std::size_t best = 0;
    for (std::size_t c = 1; c < truth.size(); ++c) {
        if (truth[c] > truth[best])
            best = c;
    }
    const double dfo =
        (truth[best] - truth[result.bestConfig]) / truth[best];
    std::printf("\nrecommended: %s after %d explorations\n",
                space.at(result.bestConfig).label().c_str(),
                result.explorations);
    std::printf("true optimum: %s; distance from optimum: %.2f%%\n",
                space.at(best).label().c_str(), dfo * 100.0);
    return dfo < 0.25 ? 0 : 1;
}
