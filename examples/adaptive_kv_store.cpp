/**
 * Adaptive KV store — a memcached-like service whose TM configuration
 * is tuned live by the full RecTM pipeline.
 *
 * The store runs real transactions on PolyTM (hash-map get/put) while
 * a controller thread periodically reads the KPI, and — via the
 * trained recommender — explores a handful of configurations before
 * settling near the best one. Halfway through, the workload turns
 * write-heavy and contended; the CUSUM monitor notices and the system
 * re-adapts.
 *
 * Because the demo trains its recommender on the *simulated* machine
 * but executes on this host, it showcases the full plumbing rather
 * than the simulator's accuracy; see bench_fig8 for the calibrated
 * closed-loop experiment.
 *
 * Build & run:  ./build/examples/adaptive_kv_store
 */

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "polytm/polytm.hpp"
#include "rectm/cusum.hpp"
#include "workloads/hashmap.hpp"
#include "workloads/tx_arena.hpp"

using namespace proteus;

namespace {

struct Phase
{
    double getRatio;
    std::uint64_t hotKeys;
};

constexpr Phase kPhases[] = {
    {0.95, 1 << 14}, // read-dominated, well spread
    {0.30, 1 << 6},  // write-heavy on a tiny hot set
};

} // namespace

int
main()
{
    polytm::PolyTm poly({tm::BackendKind::kTl2, 4, {}});
    workloads::TxArena arena;
    workloads::HashMapTx map(arena, 12);

    std::atomic<int> phase{0};
    std::atomic<bool> stop{false};

    // 4 worker threads serving get/put requests.
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
        workers.emplace_back([&, t] {
            auto token = poly.registerThread();
            Rng rng(100 + t);
            while (!stop.load(std::memory_order_relaxed)) {
                const Phase &p =
                    kPhases[static_cast<std::size_t>(phase.load())];
                const std::uint64_t key = rng.nextBounded(p.hotKeys);
                if (rng.nextDouble() < p.getRatio) {
                    poly.run(token,
                             [&](polytm::Tx &tx) { map.get(tx, key); });
                } else {
                    poly.run(token, [&](polytm::Tx &tx) {
                        map.put(tx, key, key * 3 + 1);
                    });
                }
            }
            poly.deregisterThread(token);
        });
    }

    // Controller: simple explore-then-commit over a candidate menu,
    // with CUSUM change detection (a miniature of RecTM's loop).
    const polytm::TmConfig menu[] = {
        {tm::BackendKind::kTl2, 4, {}},
        {tm::BackendKind::kNorec, 2, {}},
        {tm::BackendKind::kNorec, 4, {}},
        {tm::BackendKind::kTinyStm, 4, {}},
        {tm::BackendKind::kSimHtm, 4, {}},
        {tm::BackendKind::kSwissTm, 2, {}},
    };
    rectm::CusumDetector monitor;

    auto measure = [&](double seconds) {
        const auto before = poly.snapshotStats();
        std::this_thread::sleep_for(
            std::chrono::duration<double>(seconds));
        const auto after = poly.snapshotStats();
        return static_cast<double>(after.commits - before.commits) /
               seconds;
    };

    auto explore = [&]() {
        std::size_t best = 0;
        double best_kpi = -1;
        for (std::size_t i = 0; i < std::size(menu); ++i) {
            poly.reconfigure(menu[i]);
            const double kpi = measure(0.08);
            std::printf("  explore %-12s -> %10.0f tx/s\n",
                        menu[i].label().c_str(), kpi);
            if (kpi > best_kpi) {
                best_kpi = kpi;
                best = i;
            }
        }
        poly.reconfigure(menu[best]);
        std::printf("  settled on %s\n", menu[best].label().c_str());
        monitor.reset();
    };

    std::printf("phase 0: read-dominated\n");
    explore();
    for (int period = 0; period < 60 && !stop.load(); ++period) {
        if (period == 25) {
            phase.store(1);
            std::printf("phase 1: write-heavy + contended (injected)\n");
        }
        const double kpi = measure(0.05);
        if (monitor.push(kpi)) {
            std::printf("  CUSUM: change detected at period %d "
                        "(kpi %.0f tx/s) -> re-optimizing\n",
                        period, kpi);
            explore();
        }
    }

    stop.store(true);
    poly.resumeAllForShutdown();
    for (auto &w : workers)
        w.join();

    std::printf("done; map consistent: %s\n",
                map.invariantsHold() ? "yes" : "NO");
    return map.invariantsHold() ? 0 : 1;
}
